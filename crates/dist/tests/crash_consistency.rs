//! Crash-consistency harness for the checkpoint/restore durability layer.
//!
//! The headline invariant: a run in which a site crashes and restores from
//! its last [`SiteCheckpoint`](rfid_wire::SiteCheckpoint) (replaying the
//! journaled trace tail) finishes **bit-identical** to the uninterrupted
//! run — same containment, same per-kind communication bytes and message
//! counts, same alerts, same query-state sizes, same ONS custody, same
//! inference-run count. This must hold at *every* checkpoint boundary, for
//! every migration strategy, both wire formats, and both executors.
//!
//! Lossy faults (reader outages, delivery delays/duplicates, crash downtime)
//! intentionally change the outcome; for those the contract is weaker but
//! still strict: the same [`FaultPlan`] produces the identical outcome across
//! worker counts.

use rfid_core::InferenceConfig;
use rfid_dist::{
    DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind, MigrationStrategy,
    WireFormat,
};
use rfid_query::ExposureQuery;
use rfid_sim::{presets, ChainTrace, FaultPlan, FaultPlanConfig};
use rfid_types::Epoch;
use std::collections::BTreeMap;

const HORIZON: u32 = 900;
const SITES: u32 = 3;
const CHECKPOINT_EVERY: u32 = 120;

fn smoke_chain() -> ChainTrace {
    presets::smoke_chain(HORIZON, SITES, None)
}

/// The full-featured configuration: queries, temperatures and product
/// properties, so a checkpoint carries engine state *and* query state.
fn config(
    chain: &ChainTrace,
    strategy: MigrationStrategy,
    format: WireFormat,
) -> DistributedConfig {
    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties,
        temperature: Some(rfid_sim::TemperatureModel::new([])),
        wire_format: format,
        ..Default::default()
    }
}

/// Field-by-field equality of two outcomes, excluding wall-clock (which a
/// restore legitimately resets).
fn assert_identical(reference: &DistributedOutcome, other: &DistributedOutcome, label: &str) {
    assert_eq!(
        reference.containment, other.containment,
        "{label}: containment diverged"
    );
    for kind in MessageKind::ALL {
        assert_eq!(
            reference.comm.bytes_of_kind(kind),
            other.comm.bytes_of_kind(kind),
            "{label}: bytes of {kind:?} diverged"
        );
        assert_eq!(
            reference.comm.messages_of_kind(kind),
            other.comm.messages_of_kind(kind),
            "{label}: message count of {kind:?} diverged"
        );
    }
    assert_eq!(reference.alerts, other.alerts, "{label}: alerts diverged");
    assert_eq!(
        reference.query_state_shared_bytes, other.query_state_shared_bytes,
        "{label}: shared query-state bytes diverged"
    );
    assert_eq!(
        reference.query_state_unshared_bytes, other.query_state_unshared_bytes,
        "{label}: unshared query-state bytes diverged"
    );
    assert_eq!(reference.ons, other.ons, "{label}: ONS custody diverged");
    assert_eq!(
        reference.inference_runs, other.inference_runs,
        "{label}: inference-run count diverged"
    );
}

fn run(chain: &ChainTrace, config: DistributedConfig) -> DistributedOutcome {
    DistributedDriver::new(config).run(chain)
}

#[test]
fn checkpoints_alone_never_change_the_outcome() {
    let chain = smoke_chain();
    let plain = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        ),
    );
    let checkpointed = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY),
    );
    assert_identical(&plain, &checkpointed, "checkpoints without faults");
}

#[test]
fn crash_at_every_checkpoint_boundary_is_lossless() {
    let chain = smoke_chain();
    let reference = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY),
    );
    // Crash epochs: before the first checkpoint exists (restore from scratch,
    // full replay), then at every checkpoint boundary up to the horizon
    // (restore from the previous boundary, maximal replay). The crash site
    // rotates so sources, interior sites and sinks all get exercised.
    let mut crash_epochs = vec![CHECKPOINT_EVERY / 2];
    crash_epochs.extend((CHECKPOINT_EVERY..HORIZON).step_by(CHECKPOINT_EVERY as usize));
    for (i, at) in crash_epochs.into_iter().enumerate() {
        let site = (i as u16) % SITES as u16;
        let crashed = run(
            &chain,
            config(
                &chain,
                MigrationStrategy::CollapsedWeights,
                WireFormat::Binary,
            )
            .with_checkpoints(CHECKPOINT_EVERY)
            .with_faults(FaultPlan::scripted_crash(SITES as u16, site, Epoch(at), 0)),
        );
        assert_identical(
            &reference,
            &crashed,
            &format!("site {site} crashed at epoch {at}"),
        );
    }
}

#[test]
fn crash_recovery_is_lossless_for_every_strategy_format_and_executor() {
    let chain = smoke_chain();
    // Mid-period crash: the last checkpoint is 90 epochs old, so restore
    // exercises a real replay tail, under every strategy, both formats and
    // both executors.
    let crash = FaultPlan::scripted_crash(SITES as u16, 1, Epoch(450), 0);
    for strategy in [
        MigrationStrategy::None,
        MigrationStrategy::CriticalRegionReadings,
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::Centralized,
    ] {
        for format in [WireFormat::Json, WireFormat::Binary] {
            let label = format!("{strategy:?}/{format}");
            let reference = run(&chain, config(&chain, strategy, format));
            let crashed_sequential = run(
                &chain,
                config(&chain, strategy, format)
                    .with_checkpoints(CHECKPOINT_EVERY)
                    .with_faults(crash.clone()),
            );
            assert_identical(
                &reference,
                &crashed_sequential,
                &format!("{label}/sequential"),
            );
            let crashed_parallel = run(
                &chain,
                config(&chain, strategy, format)
                    .with_checkpoints(CHECKPOINT_EVERY)
                    .with_faults(crash.clone())
                    .with_workers(SITES as usize),
            );
            assert_identical(&reference, &crashed_parallel, &format!("{label}/parallel"));
        }
    }
}

#[test]
fn stale_checkpoint_with_journaled_arrivals_converges() {
    let chain = smoke_chain();
    // A single checkpoint at epoch 600, then a crash at 840: every shipment
    // the site received in between lives only in its journal, so the restore
    // must re-enqueue it and replay 239 epochs to converge.
    let checkpoint_at = 600;
    let crash_at = 840;
    let site = 1u16;
    assert!(
        chain.transfers.iter().any(|t| {
            t.to_site.0 == site && t.arrive.0 > checkpoint_at && t.arrive.0 < crash_at
        }),
        "the chain must deliver shipments to site {site} between the \
         checkpoint and the crash, or the journal path goes untested"
    );
    let reference = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        ),
    );
    let crashed = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(checkpoint_at)
        .with_faults(FaultPlan::scripted_crash(
            SITES as u16,
            site,
            Epoch(crash_at),
            0,
        )),
    );
    assert_identical(&reference, &crashed, "stale checkpoint + journal replay");
}

#[test]
fn lossy_fault_runs_are_identical_across_worker_counts() {
    let chain = smoke_chain();
    // Everything at once: crashes with downtime, reader outages, delayed and
    // duplicated deliveries. The outcome differs from the fault-free run by
    // design, but it must not depend on the executor.
    let plan = FaultPlan::generate(&FaultPlanConfig {
        crash_probability: 1.0,
        max_downtime_secs: 150,
        ..FaultPlanConfig::lossy(23, SITES as u16, HORIZON)
    });
    assert!(!plan.is_quiet());
    let sequential = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY)
        .with_faults(plan.clone()),
    );
    let parallel = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY)
        .with_faults(plan.clone())
        .with_workers(SITES as usize),
    );
    assert_identical(&sequential, &parallel, "lossy plan, 1 vs 3 workers");
    let uneven = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY)
        .with_faults(plan)
        .with_workers(2),
    );
    assert_identical(&sequential, &uneven, "lossy plan, 1 vs 2 workers");
}

#[test]
fn downtime_degrades_but_does_not_destroy_accuracy() {
    let chain = smoke_chain();
    let end = Epoch(chain.sites[0].meta.length);
    let objects = chain.objects();
    let accuracy = |outcome: &DistributedOutcome| {
        objects
            .iter()
            .filter(|&&o| outcome.container_of(o) == chain.containment.container_at(o, end))
            .count() as f64
            / objects.len().max(1) as f64
    };
    let reference = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        ),
    );
    let lossy = run(
        &chain,
        config(
            &chain,
            MigrationStrategy::CollapsedWeights,
            WireFormat::Binary,
        )
        .with_checkpoints(CHECKPOINT_EVERY)
        .with_faults(FaultPlan::scripted_crash(SITES as u16, 1, Epoch(450), 120)),
    );
    let (reference_acc, lossy_acc) = (accuracy(&reference), accuracy(&lossy));
    assert!(
        lossy_acc <= reference_acc + 1e-12,
        "losing 120 s of a site cannot improve accuracy \
         ({lossy_acc:.3} vs {reference_acc:.3})"
    );
    assert!(
        lossy_acc >= reference_acc - 0.3,
        "a 120 s outage of one of three sites should not wipe out accuracy \
         ({lossy_acc:.3} vs {reference_acc:.3})"
    );
}
