//! The parallel (sharded, thread-per-site) federated driver must be
//! *bit-identical* to the sequential reference: same containment, same
//! per-kind communication bytes and message counts, same alerts, same
//! query-state sizes, same ONS — across every migration strategy and every
//! worker count. Likewise, incremental (cached-evidence) inference — the
//! default — must be bit-identical to a full per-run recompute, in both
//! execution modes.

use rfid_core::InferenceConfig;
use rfid_dist::{
    DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind, MigrationStrategy,
};
use rfid_query::ExposureQuery;
use rfid_sim::{presets, ChainTrace, TemperatureModel};
use std::collections::BTreeMap;

fn smoke_chain() -> ChainTrace {
    presets::smoke_chain(1800, 3, None)
}

fn config(chain: &ChainTrace, strategy: MigrationStrategy, workers: usize) -> DistributedConfig {
    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties,
        temperature: Some(TemperatureModel::new([])),
        ..Default::default()
    }
    .with_workers(workers)
}

/// Field-by-field equality of two outcomes (DistributedOutcome itself holds
/// f64-carrying alerts, so spell the comparison out for a useful message).
fn assert_identical(seq: &DistributedOutcome, par: &DistributedOutcome, label: &str) {
    assert_eq!(
        seq.containment, par.containment,
        "{label}: containment diverged"
    );
    for kind in MessageKind::ALL {
        assert_eq!(
            seq.comm.bytes_of_kind(kind),
            par.comm.bytes_of_kind(kind),
            "{label}: bytes of {kind:?} diverged"
        );
        assert_eq!(
            seq.comm.messages_of_kind(kind),
            par.comm.messages_of_kind(kind),
            "{label}: message count of {kind:?} diverged"
        );
    }
    assert_eq!(seq.alerts, par.alerts, "{label}: alerts diverged");
    assert_eq!(
        seq.query_state_shared_bytes, par.query_state_shared_bytes,
        "{label}: shared query-state bytes diverged"
    );
    assert_eq!(
        seq.query_state_unshared_bytes, par.query_state_unshared_bytes,
        "{label}: unshared query-state bytes diverged"
    );
    assert_eq!(seq.ons, par.ons, "{label}: ONS custody diverged");
    assert_eq!(
        seq.inference_runs, par.inference_runs,
        "{label}: inference-run count diverged"
    );
}

#[test]
fn incremental_inference_is_bit_identical_to_full_recompute() {
    let chain = smoke_chain();
    assert!(!chain.transfers.is_empty(), "the chain must see migrations");
    for strategy in [
        MigrationStrategy::None,
        MigrationStrategy::CriticalRegionReadings,
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::Centralized,
    ] {
        let mut full_config = config(&chain, strategy, 1);
        full_config.inference.incremental = false;
        let full = DistributedDriver::new(full_config).run(&chain);
        assert_eq!(
            full.inference_stats,
            Default::default(),
            "{strategy:?}: full recompute must not touch the cache"
        );
        // Incremental, sequential (the default configuration).
        let incremental = DistributedDriver::new(config(&chain, strategy, 1)).run(&chain);
        assert_identical(&full, &incremental, &format!("{strategy:?} incremental"));
        assert!(
            incremental.inference_stats.posteriors_reused > 0,
            "{strategy:?}: incremental mode must actually reuse cached posteriors"
        );
        // Incremental under the parallel driver.
        let parallel =
            DistributedDriver::new(config(&chain, strategy, chain.sites.len())).run(&chain);
        assert_identical(
            &full,
            &parallel,
            &format!("{strategy:?} incremental/parallel"),
        );
        assert_eq!(
            incremental.inference_stats, parallel.inference_stats,
            "{strategy:?}: reuse accounting must be deterministic across execution modes"
        );
    }
}

#[test]
fn parallel_outcome_is_bit_identical_for_every_strategy() {
    let chain = smoke_chain();
    assert!(!chain.transfers.is_empty(), "the chain must see migrations");
    for strategy in [
        MigrationStrategy::None,
        MigrationStrategy::CriticalRegionReadings,
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::Centralized,
    ] {
        let sequential = DistributedDriver::new(config(&chain, strategy, 1)).run(&chain);
        let parallel =
            DistributedDriver::new(config(&chain, strategy, chain.sites.len())).run(&chain);
        assert_identical(&sequential, &parallel, &format!("{strategy:?}"));
    }
}

#[test]
fn uneven_shards_and_oversized_worker_counts_change_nothing() {
    let chain = smoke_chain();
    let sequential =
        DistributedDriver::new(config(&chain, MigrationStrategy::CollapsedWeights, 1)).run(&chain);
    // 2 workers over 3 sites: worker 0 owns sites {0, 2}, worker 1 owns {1}.
    let uneven =
        DistributedDriver::new(config(&chain, MigrationStrategy::CollapsedWeights, 2)).run(&chain);
    assert_identical(&sequential, &uneven, "2 workers / 3 sites");
    // More workers than sites: capped at the site count.
    let oversized =
        DistributedDriver::new(config(&chain, MigrationStrategy::CollapsedWeights, 64)).run(&chain);
    assert_identical(&sequential, &oversized, "64 workers / 3 sites");
}
