//! Crash-at-every-boundary sweep over a *chaos* schedule: the durability
//! contract of `crash_consistency.rs` extended to runs where the network is
//! actively hostile while the site goes down.
//!
//! A zero-downtime crash-restore must be bit-identical to the uncrashed run
//! even when the schedule is corrupting wire bytes (so the crashed site holds
//! a non-empty quarantine ledger), compacting history under a memory budget
//! (so the checkpoint carries live compaction counters) and losing payloads
//! (so per-edge conservation ledgers are mid-flight). That proves the
//! [`SiteCheckpoint`](rfid_wire::SiteCheckpoint) chaos sections — quarantine
//! entries, memory counters, edge ledgers — really round-trip through
//! restore; if any of them were dropped or double-counted on replay, the
//! merged outcome would diverge from the reference.
//!
//! With real downtime the outcome legitimately changes, but it must stay
//! identical across executors and pass every invariant oracle.

use rfid_core::{InferenceConfig, MemoryBudget};
use rfid_dist::{
    assert_audit, DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind,
    MigrationStrategy,
};
use rfid_sim::{presets, ChainTrace, FaultPlan, FaultPlanConfig};
use rfid_types::Epoch;

const HORIZON: u32 = 900;
const SITES: u32 = 3;
const CHECKPOINT_EVERY: u32 = 120;

fn smoke_chain() -> ChainTrace {
    presets::smoke_chain(HORIZON, SITES, None)
}

/// Every chaos family except crashes (the sweep scripts its own): corrupted
/// wire bytes heavy enough that quarantines happen early, loss and
/// partitions so the conservation ledgers see retransmission and
/// abandonment, delay/duplication, reader outages, rogue readings and
/// per-site clock skew.
fn chaos_without_crashes(seed: u64) -> FaultPlan {
    FaultPlan::generate(&FaultPlanConfig {
        outage_probability: 0.3,
        outage_max_secs: 90,
        delay_probability: 0.2,
        delay_max_secs: 60,
        duplicate_probability: 0.1,
        loss_probability: 0.1,
        ack_loss_probability: 0.05,
        partition_probability: 0.2,
        partition_max_secs: 120,
        corruption_probability: 0.35,
        rogue_probability: 0.05,
        clock_skew_max_secs: 30,
        ..FaultPlanConfig::quiet(seed, SITES as u16, HORIZON)
    })
}

/// Checkpointed, memory-budgeted configuration. The budget is tight enough
/// that compaction fires well before the horizon, so mid-run checkpoints
/// carry non-zero memory counters.
fn config(workers: usize) -> DistributedConfig {
    DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default().without_change_detection(),
        ..Default::default()
    }
    .with_checkpoints(CHECKPOINT_EVERY)
    .with_memory_budget(MemoryBudget::capped(128))
    .with_workers(workers)
}

/// Full field-by-field equality, *including* the chaos bookkeeping the
/// plain crash harness does not know about: quarantine entries, memory
/// counters, per-edge conservation ledgers and the transport totals.
fn assert_identical(reference: &DistributedOutcome, other: &DistributedOutcome, label: &str) {
    assert_eq!(
        reference.containment, other.containment,
        "{label}: containment diverged"
    );
    for kind in MessageKind::ALL {
        assert_eq!(
            reference.comm.bytes_of_kind(kind),
            other.comm.bytes_of_kind(kind),
            "{label}: bytes of {kind:?} diverged"
        );
        assert_eq!(
            reference.comm.messages_of_kind(kind),
            other.comm.messages_of_kind(kind),
            "{label}: message count of {kind:?} diverged"
        );
    }
    assert_eq!(reference.alerts, other.alerts, "{label}: alerts diverged");
    assert_eq!(reference.ons, other.ons, "{label}: ONS custody diverged");
    assert_eq!(
        reference.inference_runs, other.inference_runs,
        "{label}: inference-run count diverged"
    );
    assert_eq!(
        reference.transport, other.transport,
        "{label}: transport counters diverged"
    );
    assert_eq!(
        reference.quarantine, other.quarantine,
        "{label}: quarantine ledger diverged"
    );
    assert_eq!(
        reference.memory, other.memory,
        "{label}: memory counters diverged"
    );
    assert_eq!(
        reference.ledgers, other.ledgers,
        "{label}: per-edge conservation ledgers diverged"
    );
}

#[test]
fn a_zero_downtime_crash_at_every_boundary_preserves_the_chaos_ledgers() {
    let chain = smoke_chain();
    let chaos = chaos_without_crashes(19);
    let reference = DistributedDriver::new(config(1).with_faults(chaos.clone())).run(&chain);
    // The schedule must actually exercise the state the sweep claims to
    // protect: quarantines on the books, compaction already fired, ledgers
    // live — otherwise a restore that dropped them would pass vacuously.
    assert!(
        reference.transport.quarantined > 0,
        "the chaos schedule must quarantine at least one envelope"
    );
    assert!(
        reference.memory.compactions > 0,
        "the memory budget must force at least one compaction pass"
    );
    assert!(
        !reference.ledgers.is_empty(),
        "a chaotic run books per-edge ledgers"
    );
    assert_audit(&chain, &reference);
    // Crash epochs: mid-first-period (restore from scratch) plus every
    // checkpoint boundary, rotating the crash site so sources, interior
    // sites and sinks all restore mid-quarantine and mid-compaction.
    let mut crash_epochs = vec![CHECKPOINT_EVERY / 2];
    crash_epochs.extend((CHECKPOINT_EVERY..HORIZON).step_by(CHECKPOINT_EVERY as usize));
    for (i, at) in crash_epochs.into_iter().enumerate() {
        let site = (i as u16) % SITES as u16;
        let crashed = DistributedDriver::new(
            config(1).with_faults(chaos.clone().with_scripted_crash(site, Epoch(at), 0)),
        )
        .run(&chain);
        assert_identical(
            &reference,
            &crashed,
            &format!("site {site} crashed at epoch {at} mid-chaos"),
        );
        assert_audit(&chain, &crashed);
    }
}

#[test]
fn a_downtime_crash_mid_chaos_stays_accountable_across_executors() {
    let chain = smoke_chain();
    // Real downtime on top of the full chaos schedule: the outcome may
    // legitimately degrade, but it must be executor-independent and every
    // conservation oracle must still balance.
    let plan = chaos_without_crashes(19).with_scripted_crash(1, Epoch(450), 120);
    let sequential = DistributedDriver::new(config(1).with_faults(plan.clone())).run(&chain);
    let parallel = DistributedDriver::new(config(chain.sites.len()).with_faults(plan)).run(&chain);
    assert_identical(&sequential, &parallel, "downtime crash, 1 vs 3 workers");
    assert_audit(&chain, &sequential);
    assert_audit(&chain, &parallel);
    assert!(
        sequential.transport.quarantined > 0,
        "corruption must survive the crash window"
    );
    assert!(
        sequential.memory.high_water > 0,
        "the budget tracker must have seen the observation store"
    );
}
