//! Cross-format determinism and compression of the wire codec.
//!
//! The wire format is pure representation: switching
//! [`DistributedConfig::wire_format`] between `Json` and `Binary` must leave
//! containment, alerts, custody and run counts bit-identical — only the bytes
//! charged to [`CommCost`] (and the number of bytes on the wire) change. On
//! top of that, the binary codec must deliver the headline win: at the
//! 8-site short-dwell reference scale (seed 97, the CHANGES.md benchmark
//! chain) every shipping strategy's total communication bill must drop by at
//! least 2x versus JSON.

use rfid_core::InferenceConfig;
use rfid_dist::{
    CommCost, DistributedConfig, DistributedDriver, DistributedOutcome, MessageKind,
    MigrationStrategy, WireFormat,
};
use rfid_query::ExposureQuery;
use rfid_sim::{
    presets, ChainConfig, ChainTrace, SupplyChainSimulator, TemperatureModel, WarehouseConfig,
};
use std::collections::BTreeMap;

/// The CHANGES.md reference chain: 8 warehouses, short shelf dwells
/// (60–180 s), fast injection cadence, 2400 s horizon, seed 97.
fn reference_chain() -> ChainTrace {
    presets::short_dwell_chain(2400, 8, 20, 3)
}

/// A small two-site chain for the query-state comparison.
fn small_chain() -> ChainTrace {
    SupplyChainSimulator::new(ChainConfig {
        warehouse: WarehouseConfig::default()
            .with_length(1800)
            .with_items_per_case(4)
            .with_cases_per_pallet(2)
            .with_seed(11),
        num_warehouses: 2,
        transit_secs: 90,
        fanout: 1,
    })
    .generate()
}

fn run(chain: &ChainTrace, strategy: MigrationStrategy, format: WireFormat) -> DistributedOutcome {
    DistributedDriver::new(DistributedConfig {
        strategy,
        inference: InferenceConfig::default().without_change_detection(),
        wire_format: format,
        ..Default::default()
    })
    .run(chain)
}

/// Everything but bytes must be bit-identical across formats.
fn assert_formats_agree(json: &DistributedOutcome, binary: &DistributedOutcome, label: &str) {
    assert_eq!(
        json.containment, binary.containment,
        "{label}: containment must not depend on the wire format"
    );
    assert_eq!(json.alerts, binary.alerts, "{label}: alerts");
    assert_eq!(json.ons, binary.ons, "{label}: ONS custody");
    assert_eq!(
        json.inference_runs, binary.inference_runs,
        "{label}: inference-run count"
    );
    for kind in MessageKind::ALL {
        assert_eq!(
            json.comm.messages_of_kind(kind),
            binary.comm.messages_of_kind(kind),
            "{label}: same messages cross the network under {kind:?}, only their size differs"
        );
    }
}

fn total(comm: &CommCost) -> usize {
    comm.total_bytes()
}

#[test]
fn binary_halves_every_shipping_strategy_at_the_reference_scale() {
    let chain = reference_chain();
    assert!(
        chain.transfers.len() > 2000,
        "the reference chain must be migration-heavy ({} transfers)",
        chain.transfers.len()
    );
    for strategy in [
        MigrationStrategy::CollapsedWeights,
        MigrationStrategy::CriticalRegionReadings,
        MigrationStrategy::Centralized,
    ] {
        let json = run(&chain, strategy, WireFormat::Json);
        let binary = run(&chain, strategy, WireFormat::Binary);
        assert_formats_agree(&json, &binary, &format!("{strategy:?}"));
        let (j, b) = (total(&json.comm), total(&binary.comm));
        assert!(b > 0, "{strategy:?} must ship state");
        assert!(
            b * 2 <= j,
            "{strategy:?}: binary ({b} B) must at least halve JSON ({j} B)"
        );
    }
}

#[test]
fn none_strategy_is_silent_in_both_formats() {
    let chain = small_chain();
    for format in [WireFormat::Json, WireFormat::Binary] {
        let outcome = run(&chain, MigrationStrategy::None, format);
        assert_eq!(
            outcome.comm.total_bytes(),
            0,
            "{format}: None sends nothing"
        );
        assert_eq!(outcome.comm.total_messages(), 0);
    }
}

#[test]
fn query_state_bundles_agree_across_formats_and_binary_is_smaller() {
    let chain = small_chain();
    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    let config = |format| DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties.clone(),
        temperature: Some(TemperatureModel::new([])),
        wire_format: format,
        ..Default::default()
    };
    let json = DistributedDriver::new(config(WireFormat::Json)).run(&chain);
    let binary = DistributedDriver::new(config(WireFormat::Binary)).run(&chain);
    assert_formats_agree(&json, &binary, "CollapsedWeights+queries");
    assert!(
        !binary.alerts.is_empty(),
        "exposure alerts must fire regardless of format"
    );
    // Sharing stays profitable in both representations, and the charged
    // query-state bytes are the shared (bundle-encoded) bytes.
    for (label, outcome) in [("json", &json), ("binary", &binary)] {
        assert!(
            outcome.query_state_shared_bytes <= outcome.query_state_unshared_bytes,
            "{label}: sharing must never inflate the state"
        );
        assert_eq!(
            outcome.query_state_shared_bytes,
            outcome.comm.bytes_of_kind(MessageKind::QueryState)
        );
    }
    assert!(
        binary.comm.bytes_of_kind(MessageKind::QueryState)
            < json.comm.bytes_of_kind(MessageKind::QueryState),
        "binary bundles ({} B) must undercut JSON bundles ({} B)",
        binary.comm.bytes_of_kind(MessageKind::QueryState),
        json.comm.bytes_of_kind(MessageKind::QueryState)
    );
    assert!(
        binary.comm.bytes_of_kind(MessageKind::InferenceState)
            < json.comm.bytes_of_kind(MessageKind::InferenceState)
    );
}

#[test]
fn parallel_execution_agrees_with_sequential_in_both_formats() {
    let chain = small_chain();
    for format in [WireFormat::Json, WireFormat::Binary] {
        let sequential = DistributedDriver::new(DistributedConfig {
            strategy: MigrationStrategy::CriticalRegionReadings,
            inference: InferenceConfig::default().without_change_detection(),
            wire_format: format,
            ..Default::default()
        })
        .run(&chain);
        let parallel = DistributedDriver::new(DistributedConfig {
            strategy: MigrationStrategy::CriticalRegionReadings,
            inference: InferenceConfig::default().without_change_detection(),
            wire_format: format,
            num_workers: 2,
            ..Default::default()
        })
        .run(&chain);
        assert_eq!(sequential.containment, parallel.containment, "{format}");
        assert_eq!(sequential.comm, parallel.comm, "{format}");
        assert_eq!(sequential.ons, parallel.ons, "{format}");
    }
}
