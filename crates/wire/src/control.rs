//! Transport control messages: acks and anti-entropy resync requests.
//!
//! The reliable-delivery transport of `rfid-dist` pairs every cross-site
//! payload with a sequence number on its directed edge; the receiver
//! acknowledges each arrival with an [`ControlMsg::Ack`], and a site
//! rejoining after downtime announces itself with a [`ControlMsg::Resync`]
//! per in-edge. Control messages ride the same versioned wire as every other
//! payload (kind `0x08`), so their bytes are charged and visible in the
//! communication tables.

use crate::codec::{check_header, header, WireCodec};
use crate::{WireError, WireFormat};
use rfid_types::Epoch;
use serde::{Deserialize, Serialize};

/// Payload-kind byte of a control message.
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
pub(crate) const KIND_CONTROL: u8 = 0x08;

const CONTROL_ACK: u8 = 0;
const CONTROL_RESYNC: u8 = 1;

/// One transport control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Acknowledges receipt of the payload carrying sequence number `seq` on
    /// the directed edge `from → to` (sent back `to → from`).
    Ack {
        /// Sender of the acknowledged payload.
        from: u16,
        /// Receiver of the acknowledged payload (the ack's sender).
        to: u16,
        /// Acknowledged per-edge sequence number.
        seq: u64,
    },
    /// Anti-entropy resync request: `site` rejoined after downtime and asks
    /// `peer` to re-deliver anything unacked since `since`.
    Resync {
        /// The rejoining site.
        site: u16,
        /// The peer being asked to re-deliver.
        peer: u16,
        /// First epoch the rejoining site may have missed.
        since: Epoch,
    },
}

impl WireCodec {
    /// Encode a transport control message.
    pub fn encode_control(&self, msg: &ControlMsg) -> Vec<u8> {
        match self.format() {
            WireFormat::Json => serde_json::to_vec(msg).expect("control message serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_CONTROL);
                match msg {
                    ControlMsg::Ack { from, to, seq } => {
                        w.put_u8(CONTROL_ACK);
                        w.put_varint(u64::from(*from));
                        w.put_varint(u64::from(*to));
                        w.put_varint(*seq);
                    }
                    ControlMsg::Resync { site, peer, since } => {
                        w.put_u8(CONTROL_RESYNC);
                        w.put_varint(u64::from(*site));
                        w.put_varint(u64::from(*peer));
                        w.put_varint(u64::from(since.0));
                    }
                }
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_control`] message.
    pub fn decode_control(&self, bytes: &[u8]) -> Result<ControlMsg, WireError> {
        match self.format() {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_CONTROL)?;
                let msg = match r.get_u8()? {
                    CONTROL_ACK => {
                        let from = get_site(&mut r)?;
                        let to = get_site(&mut r)?;
                        let seq = r.get_varint()?;
                        ControlMsg::Ack { from, to, seq }
                    }
                    CONTROL_RESYNC => {
                        let site = get_site(&mut r)?;
                        let peer = get_site(&mut r)?;
                        let since = get_control_epoch(&mut r)?;
                        ControlMsg::Resync { site, peer, since }
                    }
                    _ => return Err(WireError::new("unknown control variant")),
                };
                r.expect_exhausted()?;
                Ok(msg)
            }
        }
    }
}

fn get_site(r: &mut crate::primitives::Reader<'_>) -> Result<u16, WireError> {
    u16::try_from(r.get_varint()?).map_err(|_| WireError::new("site id out of u16 range"))
}

fn get_control_epoch(r: &mut crate::primitives::Reader<'_>) -> Result<Epoch, WireError> {
    u32::try_from(r.get_varint()?)
        .map(Epoch)
        .map_err(|_| WireError::new("epoch out of u32 range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> [WireCodec; 2] {
        [
            WireCodec::new(WireFormat::Binary),
            WireCodec::new(WireFormat::Json),
        ]
    }

    #[test]
    fn control_messages_round_trip_in_both_formats() {
        let msgs = [
            ControlMsg::Ack {
                from: 0,
                to: 7,
                seq: 0,
            },
            ControlMsg::Ack {
                from: u16::MAX,
                to: 0,
                seq: u64::MAX,
            },
            ControlMsg::Resync {
                site: 3,
                peer: 5,
                since: Epoch(0),
            },
            ControlMsg::Resync {
                site: 1,
                peer: 2,
                since: Epoch(u32::MAX),
            },
        ];
        for codec in codecs() {
            for msg in &msgs {
                let bytes = codec.encode_control(msg);
                assert_eq!(&codec.decode_control(&bytes).unwrap(), msg);
            }
        }
    }

    #[test]
    fn binary_acks_are_a_handful_of_bytes() {
        let binary = WireCodec::new(WireFormat::Binary);
        let bytes = binary.encode_control(&ControlMsg::Ack {
            from: 2,
            to: 5,
            seq: 17,
        });
        assert!(
            bytes.len() <= 8,
            "an ack should cost a handful of bytes, got {}",
            bytes.len()
        );
        let json = WireCodec::new(WireFormat::Json).encode_control(&ControlMsg::Ack {
            from: 2,
            to: 5,
            seq: 17,
        });
        assert!(bytes.len() < json.len());
    }

    #[test]
    fn corrupted_control_messages_are_rejected() {
        let binary = WireCodec::new(WireFormat::Binary);
        let bytes = binary.encode_control(&ControlMsg::Ack {
            from: 1,
            to: 2,
            seq: 3,
        });
        for cut in 0..bytes.len() {
            assert!(binary.decode_control(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(binary.decode_control(&trailing).is_err());
        let mut bad_variant = bytes;
        bad_variant[2] = 9;
        assert!(binary.decode_control(&bad_variant).is_err());
    }
}
