//! # rfid-wire
//!
//! Compact binary wire codec for every payload that crosses a site boundary
//! in the distributed pipeline (Sections 4 and 5.3 of the paper).
//!
//! Communication cost is the headline metric of the paper's federated
//! design — CollapsedWeights hits ~98% of centralized accuracy at ~2% of its
//! bytes — so the wire representation of the migrating state matters as much
//! as *what* migrates. This crate provides a versioned binary format built
//! from varint integers, zigzag delta-encoded epoch sequences, raw IEEE-754
//! float bits, and per-message symbol tables for repeated tag ids, typically
//! 2–5x smaller than the JSON representation and cheaper to produce.
//!
//! Four payload families are covered, one per cross-site
//! [`MessageKind`](https://docs.rs/rfid-dist) of the distributed layer:
//!
//! * collapsed weights and critical-region readings
//!   ([`rfid_core::MigrationState`], [`rfid_core::CollapsedState`]);
//! * centralized raw-reading forwarding (`&[RawReading]` batches);
//! * query-state bundles ([`rfid_query::SharedStateBundle`],
//!   [`rfid_query::ObjectQueryState`]);
//! * site checkpoints ([`SiteCheckpoint`]) — a site's complete durable state
//!   (engine + processor snapshots, cursors, inbox, accounting) framed as a
//!   first-class payload so a checkpoint is also a serialized artifact.
//!
//! The [`WireFormat`] selects between [`WireFormat::Binary`] (the default of
//! the distributed layer) and [`WireFormat::Json`] — plain, inspectable
//! `serde_json` bytes kept for debugging and back-compat tests. Every
//! encoding is bit-exact: `decode(encode(x)) == x` including `f64` bit
//! patterns, so the two formats produce identical inference and query
//! outcomes and differ only in bytes on the wire.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod control;
pub mod primitives;

pub use checkpoint::{
    EdgeLedger, EdgeSeqs, PendingShipment, QuarantineEntry, SiteCheckpoint, TransportStats,
};
pub use codec::{WireCodec, WIRE_VERSION};
pub use control::ControlMsg;

use serde::{Deserialize, Serialize};
use std::fmt;

/// The wire representation used for cross-site payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WireFormat {
    /// Plain `serde_json` bytes — human-inspectable, kept for debugging and
    /// back-compat tests.
    Json,
    /// The compact binary format of [`codec`] (varints, delta-encoded
    /// epochs, per-message tag tables, one-byte version header).
    #[default]
    Binary,
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFormat::Json => write!(f, "json"),
            WireFormat::Binary => write!(f, "binary"),
        }
    }
}

/// What went wrong while decoding, machine-matchable.
///
/// The distributed layer retries or quarantines a peer differently depending
/// on whether its bytes were cut short in transit ([`Truncated`]), speak a
/// different protocol ([`BadHeader`]), or are internally inconsistent
/// ([`LengthOverflow`], [`Malformed`]) — so the kind is part of the decode
/// contract, not just the message text.
///
/// [`Truncated`]: WireErrorKind::Truncated
/// [`BadHeader`]: WireErrorKind::BadHeader
/// [`LengthOverflow`]: WireErrorKind::LengthOverflow
/// [`Malformed`]: WireErrorKind::Malformed
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireErrorKind {
    /// The buffer ended mid-field: a well-formed prefix of a longer message.
    Truncated,
    /// The version byte or payload-kind tag is not one this codec speaks.
    BadHeader,
    /// A length prefix or delta-encoded value overflows its target type —
    /// the message lies about its own size.
    LengthOverflow,
    /// Structurally invalid content (bad table index, out-of-range enum
    /// discriminant, trailing bytes, …).
    Malformed,
    /// The JSON fallback format failed to parse.
    Json,
}

/// Decoding failure: corrupted, truncated, mis-versioned or mis-typed bytes.
///
/// Encoding never fails; decoding validates the version header, the payload
/// kind, every length prefix and every table index before building a value.
/// Decoding *never panics* — arbitrary bytes from a peer surface as one of
/// the [`WireErrorKind`]s (machine-checked by the `panic-free-decode` rule
/// of `rfid-lint` and fuzzed in `tests/fuzz.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    kind: WireErrorKind,
    message: String,
}

impl WireError {
    /// A structurally-invalid-content error with the given description.
    pub fn new(message: impl Into<String>) -> WireError {
        WireError::with_kind(WireErrorKind::Malformed, message)
    }

    /// An error of an explicit [`WireErrorKind`].
    pub fn with_kind(kind: WireErrorKind, message: impl Into<String>) -> WireError {
        WireError {
            kind,
            message: message.into(),
        }
    }

    /// Which class of failure this is.
    pub fn kind(&self) -> WireErrorKind {
        self.kind
    }

    pub(crate) fn truncated(what: &str) -> WireError {
        WireError::with_kind(
            WireErrorKind::Truncated,
            format!("message truncated while reading {what}"),
        )
    }

    pub(crate) fn bad_header(what: impl Into<String>) -> WireError {
        WireError::with_kind(WireErrorKind::BadHeader, what)
    }

    pub(crate) fn length_overflow(what: &str) -> WireError {
        WireError::with_kind(
            WireErrorKind::LengthOverflow,
            format!("length or delta overflows while reading {what}"),
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

impl From<serde_json::Error> for WireError {
    fn from(err: serde_json::Error) -> WireError {
        WireError::with_kind(WireErrorKind::Json, format!("json payload: {err}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_is_the_default_format() {
        assert_eq!(WireFormat::default(), WireFormat::Binary);
        assert_eq!(WireFormat::Binary.to_string(), "binary");
        assert_eq!(WireFormat::Json.to_string(), "json");
    }

    #[test]
    fn errors_format_and_convert() {
        let err = WireError::new("boom");
        assert!(err.to_string().contains("boom"));
        assert_eq!(err.kind(), WireErrorKind::Malformed);
        let err = WireError::truncated("f64");
        assert!(err.to_string().contains("truncated"));
        assert_eq!(err.kind(), WireErrorKind::Truncated);
        let err = WireError::length_overflow("byte-string length");
        assert_eq!(err.kind(), WireErrorKind::LengthOverflow);
        let err = WireError::bad_header("version 9 is from the future");
        assert_eq!(err.kind(), WireErrorKind::BadHeader);
    }
}
