//! Byte-level building blocks of the binary wire format: LEB128 varints,
//! zigzag signed deltas, IEEE-754 bit-exact floats, length-prefixed byte
//! strings, and per-message symbol tables for repeated tag ids.
//!
//! Every primitive is paired: `Writer::put_*` has exactly one `Reader::get_*`
//! that inverts it, so the codec layer composes round-trip-exact messages out
//! of round-trip-exact pieces.

use crate::WireError;
use rfid_types::TagId;

/// Append-only byte sink for encoding one message.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer with an empty buffer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Append an unsigned LEB128 varint (1 byte for values < 128).
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let low = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(low);
                return;
            }
            self.buf.push(low | 0x80);
        }
    }

    /// Append a signed value as a zigzag-mapped varint (small magnitudes of
    /// either sign stay short — the workhorse of delta encoding).
    pub fn put_zigzag(&mut self, value: i64) {
        self.put_varint(((value << 1) ^ (value >> 63)) as u64);
    }

    /// Append an `f64` as its 8 raw little-endian IEEE-754 bytes, so decoding
    /// reproduces the value bit for bit (including NaN payloads and -0.0).
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over the bytes of one message being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let byte = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| WireError::truncated("byte"))?;
        self.pos += 1;
        Ok(byte)
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(WireError::new("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-mapped signed varint.
    pub fn get_zigzag(&mut self) -> Result<i64, WireError> {
        let raw = self.get_varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Read an `f64` from its 8 raw little-endian bytes.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        let end = self
            .pos
            .checked_add(8)
            .ok_or_else(|| WireError::length_overflow("f64"))?;
        let raw: [u8; 8] = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| WireError::truncated("f64"))?
            .try_into()
            .map_err(|_| WireError::truncated("f64"))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Read a length-prefixed byte string.
    ///
    /// The length prefix is validated before any allocation or slicing: a
    /// prefix that would wrap `usize` (possible on declared lengths near
    /// `u64::MAX`) is a [`LengthOverflow`](crate::WireErrorKind), not a
    /// wrapped-around bounds check.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = usize::try_from(self.get_varint()?)
            .map_err(|_| WireError::length_overflow("byte string"))?;
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| WireError::length_overflow("byte string"))?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| WireError::truncated("byte string"))?
            .to_vec();
        self.pos = end;
        Ok(out)
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fail unless the message was consumed exactly.
    pub fn expect_exhausted(&self) -> Result<(), WireError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(WireError::new("trailing bytes after message"))
        }
    }
}

/// Per-message symbol table of distinct [`TagId`]s.
///
/// A migrating payload names the same handful of tags over and over (the
/// object, its candidate containers, the tags of a reading batch). Encoding
/// each mention as a raw 8-byte id wastes most of the message; instead every
/// message carries one sorted table of its distinct tags — itself
/// delta-encoded, since sorted ids are clustered by kind and serial — and
/// every mention is a short varint index into it.
#[derive(Debug, Default)]
pub struct TagTable {
    sorted: Vec<TagId>,
}

impl TagTable {
    /// Build the table from every tag the message will mention.
    pub fn from_tags<I: IntoIterator<Item = TagId>>(tags: I) -> TagTable {
        let mut sorted: Vec<TagId> = tags.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        TagTable { sorted }
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The index of a tag the table was built over.
    ///
    /// # Panics
    /// Panics if the tag was not part of the builder input — that is a codec
    /// bug, not a data error.
    pub fn index_of(&self, tag: TagId) -> u64 {
        self.sorted
            .binary_search(&tag)
            // LINT-ALLOW(panic-free-decode): encode-side lookup over the builder's own input; a miss is a codec bug, documented under # Panics above
            .expect("tag was interned when the table was built") as u64
    }

    /// The tag at a decoded index.
    pub fn tag_at(&self, index: u64) -> Result<TagId, WireError> {
        self.sorted
            .get(index as usize)
            .copied()
            .ok_or_else(|| WireError::new("tag index out of table bounds"))
    }

    /// Encode the table: count, then the sorted raw ids delta-encoded.
    pub fn encode(&self, w: &mut Writer) {
        w.put_varint(self.sorted.len() as u64);
        let mut prev = 0u64;
        for tag in &self.sorted {
            let raw = tag.raw();
            w.put_varint(raw - prev);
            prev = raw;
        }
    }

    /// Decode a table encoded by [`Self::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<TagTable, WireError> {
        let count = r.get_varint()? as usize;
        let mut sorted = Vec::with_capacity(count.min(1 << 16));
        let mut prev = 0u64;
        for i in 0..count {
            let delta = r.get_varint()?;
            if i > 0 && delta == 0 {
                return Err(WireError::new("tag table is not strictly ascending"));
            }
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| WireError::new("tag table id overflows u64"))?;
            sorted.push(TagId::from_raw(prev));
        }
        Ok(TagTable { sorted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_and_zigzag_round_trip_boundaries() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.put_varint(v);
        }
        let signed = [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX];
        for &v in &signed {
            w.put_zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.get_zigzag().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn small_values_stay_single_byte() {
        let mut w = Writer::new();
        w.put_varint(127);
        w.put_zigzag(-1);
        w.put_zigzag(2);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn f64_is_bit_exact() {
        let mut w = Writer::new();
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e-300] {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, -1e-300] {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut r = Reader::new(&[0x80]);
        assert!(r.get_varint().is_err(), "unterminated varint");
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.get_f64().is_err());
        let mut r = Reader::new(&[5, b'a']);
        assert!(r.get_bytes().is_err(), "length prefix exceeds payload");
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes can encode more than 64 bits.
        let bytes = [0xffu8; 10];
        let mut r = Reader::new(&bytes);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn tag_table_round_trips_and_indexes() {
        let tags = [
            TagId::item(7),
            TagId::case(1),
            TagId::item(7), // duplicate collapses
            TagId::pallet(3),
            TagId::item(8),
        ];
        let table = TagTable::from_tags(tags);
        assert_eq!(table.len(), 4);
        let mut w = Writer::new();
        table.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = TagTable::decode(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), table.len());
        for tag in tags {
            assert_eq!(back.tag_at(table.index_of(tag)).unwrap(), tag);
        }
        assert!(back.tag_at(99).is_err());
    }

    #[test]
    fn clustered_tag_table_is_compact() {
        // 50 items with adjacent serials: ~2 bytes each after the first
        // (the kind bits live in the high bits, so deltas are 1).
        let table = TagTable::from_tags((0..50).map(TagId::item));
        let mut w = Writer::new();
        table.encode(&mut w);
        assert!(w.len() < 60, "50 clustered tags took {} bytes", w.len());
    }
}
