//! The per-payload encoders and decoders of the binary wire format, plus the
//! format-selecting [`WireCodec`] front end.
//!
//! ## Message layout (binary format)
//!
//! Every binary message starts with a two-byte header — the format version
//! ([`WIRE_VERSION`]) and a payload-kind byte — followed by the body:
//!
//! | kind | payload | body |
//! |---|---|---|
//! | `0x01` | [`MigrationState`] | variant byte, then a collapsed or readings body |
//! | `0x02` | reading batch | tag table + order-preserving reading sequence |
//! | `0x03` | [`ObjectQueryState`] | query name, tag, automaton |
//! | `0x04` | [`SharedStateBundle`] | centroid payload + per-object deltas |
//! | `0x05` | [`CollapsedState`] | tag table + per-candidate weight bits |
//! | `0x06` | query-state payload | tag-less `(query, automaton)` for sharing |
//! | `0x07` | [`crate::checkpoint::SiteCheckpoint`] | site-wide tag table + engine/processor snapshots + durability bookkeeping |
//! | `0x08` | [`crate::ControlMsg`] | transport control: ack / anti-entropy resync |
//!
//! Bodies are built from the primitives of [`crate::primitives`]: unsigned
//! varints, zigzag varints for deltas, raw IEEE-754 bits for floats, and one
//! sorted per-message [`TagTable`] wherever tags repeat. Epoch sequences are
//! delta-encoded against the previous entry (zigzag, so unsorted sequences
//! still round-trip); sorted sequences — the common case — cost one byte per
//! epoch.
//!
//! In the JSON format every message is exactly the `serde_json` serialization
//! of the payload, with no header: the debugging representation is plain,
//! inspectable JSON.
//!
//! All encodings are *bit-exact*: `decode(encode(x))` reproduces `x`
//! including `f64` bit patterns, so routing live state through the codec can
//! never change an inference or query outcome.

use crate::primitives::{Reader, TagTable, Writer};
use crate::{WireError, WireFormat};
use rfid_core::{CollapsedState, MigrationState, ReadingsState};
use rfid_query::sharing::{json_payload, state_from_json_payload};
use rfid_query::{AutomatonState, ObjectQueryState, SharedStateBundle, StateDelta};
use rfid_types::{Epoch, RawReading, ReaderId, TagId};
use std::collections::BTreeMap;

/// Version byte every binary message starts with.
pub const WIRE_VERSION: u8 = 1;

// Every payload kind carries a corrupted-bytes fuzz case in
// `tests/fuzz.rs::corrupted_byte_zero_is_a_typed_error_for_every_kind`
// (enforced by the `wire-fuzz-coverage` lint rule).
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_MIGRATION: u8 = 0x01;
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_READINGS: u8 = 0x02;
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_QUERY_STATE: u8 = 0x03;
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_BUNDLE: u8 = 0x04;
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_COLLAPSED: u8 = 0x05;
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
const KIND_STATE_PAYLOAD: u8 = 0x06;

const MIGRATION_NONE: u8 = 0;
const MIGRATION_COLLAPSED: u8 = 1;
const MIGRATION_READINGS: u8 = 2;

const AUTOMATON_IDLE: u8 = 0;
const AUTOMATON_ACCUMULATING: u8 = 1;

/// Encoder/decoder for one wire format.
///
/// The codec is a tiny `Copy` value (just the selected [`WireFormat`]), so
/// every site worker carries its own.
///
/// # Example
///
/// ```
/// use rfid_core::{CollapsedState, MigrationState};
/// use rfid_types::TagId;
/// use rfid_wire::{WireCodec, WireFormat};
///
/// let state = MigrationState::Collapsed(CollapsedState {
///     object: TagId::item(3),
///     weights: [(TagId::case(1), -12.5)].into_iter().collect(),
///     container: Some(TagId::case(1)),
/// });
/// let binary = WireCodec::new(WireFormat::Binary);
/// let json = WireCodec::new(WireFormat::Json);
/// let compact = binary.encode_migration(&state);
/// assert_eq!(binary.decode_migration(&compact).unwrap(), state);
/// assert!(compact.len() * 2 < json.encode_migration(&state).len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCodec {
    format: WireFormat,
}

impl WireCodec {
    /// A codec for the given format.
    pub fn new(format: WireFormat) -> WireCodec {
        WireCodec { format }
    }

    /// The selected format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Encode the inference state migrating with one object.
    pub fn encode_migration(&self, state: &MigrationState) -> Vec<u8> {
        match self.format {
            WireFormat::Json => serde_json::to_vec(state).expect("migration state serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_MIGRATION);
                match state {
                    MigrationState::None => w.put_u8(MIGRATION_NONE),
                    MigrationState::Collapsed(collapsed) => {
                        w.put_u8(MIGRATION_COLLAPSED);
                        encode_collapsed_body(&mut w, collapsed);
                    }
                    MigrationState::Readings(readings) => {
                        w.put_u8(MIGRATION_READINGS);
                        encode_readings_state_body(&mut w, readings);
                    }
                }
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_migration`] message.
    pub fn decode_migration(&self, bytes: &[u8]) -> Result<MigrationState, WireError> {
        match self.format {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_MIGRATION)?;
                let state = match r.get_u8()? {
                    MIGRATION_NONE => MigrationState::None,
                    MIGRATION_COLLAPSED => {
                        MigrationState::Collapsed(decode_collapsed_body(&mut r)?)
                    }
                    MIGRATION_READINGS => {
                        MigrationState::Readings(decode_readings_state_body(&mut r)?)
                    }
                    _ => return Err(WireError::new("unknown migration-state variant")),
                };
                r.expect_exhausted()?;
                Ok(state)
            }
        }
    }

    /// Encode one object's collapsed inference state.
    pub fn encode_collapsed(&self, state: &CollapsedState) -> Vec<u8> {
        match self.format {
            WireFormat::Json => serde_json::to_vec(state).expect("collapsed state serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_COLLAPSED);
                encode_collapsed_body(&mut w, state);
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_collapsed`] message.
    pub fn decode_collapsed(&self, bytes: &[u8]) -> Result<CollapsedState, WireError> {
        match self.format {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_COLLAPSED)?;
                let state = decode_collapsed_body(&mut r)?;
                r.expect_exhausted()?;
                Ok(state)
            }
        }
    }

    /// Encode a batch of raw readings (the centralized forwarding payload),
    /// preserving their order.
    pub fn encode_readings(&self, readings: &[RawReading]) -> Vec<u8> {
        match self.format {
            WireFormat::Json => serde_json::to_vec(readings).expect("readings serialize"),
            WireFormat::Binary => {
                let mut w = header(KIND_READINGS);
                let table = TagTable::from_tags(readings.iter().map(|r| r.tag));
                table.encode(&mut w);
                encode_reading_seq(&mut w, &table, readings);
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_readings`] message.
    pub fn decode_readings(&self, bytes: &[u8]) -> Result<Vec<RawReading>, WireError> {
        match self.format {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_READINGS)?;
                let table = TagTable::decode(&mut r)?;
                let readings = decode_reading_seq(&mut r, &table)?;
                r.expect_exhausted()?;
                Ok(readings)
            }
        }
    }

    /// Encode one object's query state for one query.
    pub fn encode_query_state(&self, state: &ObjectQueryState) -> Vec<u8> {
        match self.format {
            WireFormat::Json => serde_json::to_vec(state).expect("query state serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_QUERY_STATE);
                w.put_bytes(state.query.as_bytes());
                w.put_varint(state.tag.raw());
                encode_automaton(&mut w, &state.automaton);
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_query_state`] message.
    pub fn decode_query_state(&self, bytes: &[u8]) -> Result<ObjectQueryState, WireError> {
        match self.format {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_QUERY_STATE)?;
                let query = get_string(&mut r)?;
                let tag = TagId::from_raw(r.get_varint()?);
                let automaton = decode_automaton(&mut r)?;
                r.expect_exhausted()?;
                Ok(ObjectQueryState {
                    query,
                    tag,
                    automaton,
                })
            }
        }
    }

    /// Encode a centroid-compressed query-state bundle.
    pub fn encode_bundle(&self, bundle: &SharedStateBundle) -> Vec<u8> {
        match self.format {
            WireFormat::Json => serde_json::to_vec(bundle).expect("bundle serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_BUNDLE);
                w.put_varint(bundle.centroid_tag.raw());
                w.put_bytes(&bundle.centroid_bytes);
                w.put_varint(bundle.deltas.len() as u64);
                for delta in &bundle.deltas {
                    encode_delta(&mut w, delta);
                }
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_bundle`] message.
    pub fn decode_bundle(&self, bytes: &[u8]) -> Result<SharedStateBundle, WireError> {
        match self.format {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_BUNDLE)?;
                let centroid_tag = TagId::from_raw(r.get_varint()?);
                let centroid_bytes = r.get_bytes()?;
                let count = r.get_varint()? as usize;
                let mut deltas = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    deltas.push(decode_delta(&mut r)?);
                }
                r.expect_exhausted()?;
                Ok(SharedStateBundle {
                    centroid_tag,
                    centroid_bytes,
                    deltas,
                })
            }
        }
    }

    /// The diffable (tag-less) payload of one query state, in this codec's
    /// format — what centroid-based sharing diffs against the centroid
    /// (plug into [`rfid_query::sharing::share_states_with`]).
    pub fn state_payload(&self, state: &ObjectQueryState) -> Vec<u8> {
        match self.format {
            WireFormat::Json => json_payload(state),
            WireFormat::Binary => {
                let mut w = header(KIND_STATE_PAYLOAD);
                w.put_bytes(state.query.as_bytes());
                encode_automaton(&mut w, &state.automaton);
                w.into_bytes()
            }
        }
    }

    /// Rebuild an [`ObjectQueryState`] from its tag and a
    /// [`Self::state_payload`] (plug into
    /// [`rfid_query::SharedStateBundle::expand_states_with`]).
    pub fn state_from_payload(
        &self,
        tag: TagId,
        payload: &[u8],
    ) -> Result<ObjectQueryState, WireError> {
        match self.format {
            WireFormat::Json => Ok(state_from_json_payload(tag, payload)?),
            WireFormat::Binary => {
                let mut r = check_header(payload, KIND_STATE_PAYLOAD)?;
                let query = get_string(&mut r)?;
                let automaton = decode_automaton(&mut r)?;
                r.expect_exhausted()?;
                Ok(ObjectQueryState {
                    query,
                    tag,
                    automaton,
                })
            }
        }
    }
}

pub(crate) fn header(kind: u8) -> Writer {
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    w.put_u8(kind);
    w
}

pub(crate) fn check_header(bytes: &[u8], kind: u8) -> Result<Reader<'_>, WireError> {
    let mut r = Reader::new(bytes);
    let version = r.get_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::bad_header(format!(
            "unsupported wire version {version} (this codec speaks {WIRE_VERSION})"
        )));
    }
    let got = r.get_u8()?;
    if got != kind {
        return Err(WireError::bad_header(format!(
            "payload kind mismatch: expected {kind:#04x}, got {got:#04x}"
        )));
    }
    Ok(r)
}

pub(crate) fn get_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    String::from_utf8(r.get_bytes()?).map_err(|_| WireError::new("string is not valid UTF-8"))
}

pub(crate) fn get_epoch(raw: i64) -> Result<Epoch, WireError> {
    u32::try_from(raw)
        .map(Epoch)
        .map_err(|_| WireError::new("epoch out of u32 range"))
}

/// Accumulate one zigzag delta onto a running base without wrapping: a
/// hostile message can place each individual delta in range while their sum
/// overflows `i64` (an abort under `overflow-checks`, silent wrap without).
pub(crate) fn checked_delta(base: i64, delta: i64, what: &str) -> Result<i64, WireError> {
    base.checked_add(delta)
        .ok_or_else(|| WireError::length_overflow(what))
}

/// Optional tag reference against a table: `0` for `None`, `1 + index`
/// otherwise.
pub(crate) fn put_opt_tag(w: &mut Writer, table: &TagTable, tag: Option<TagId>) {
    match tag {
        None => w.put_varint(0),
        Some(t) => w.put_varint(1 + table.index_of(t)),
    }
}

pub(crate) fn get_opt_tag(
    r: &mut Reader<'_>,
    table: &TagTable,
) -> Result<Option<TagId>, WireError> {
    match r.get_varint()? {
        0 => Ok(None),
        n => Ok(Some(table.tag_at(n - 1)?)),
    }
}

fn encode_collapsed_body(w: &mut Writer, state: &CollapsedState) {
    let table = TagTable::from_tags(
        std::iter::once(state.object)
            .chain(state.weights.keys().copied())
            .chain(state.container),
    );
    table.encode(w);
    w.put_varint(table.index_of(state.object));
    put_opt_tag(w, &table, state.container);
    w.put_varint(state.weights.len() as u64);
    for (&tag, &weight) in &state.weights {
        w.put_varint(table.index_of(tag));
        w.put_f64(weight);
    }
}

fn decode_collapsed_body(r: &mut Reader<'_>) -> Result<CollapsedState, WireError> {
    let table = TagTable::decode(r)?;
    let object = table.tag_at(r.get_varint()?)?;
    let container = get_opt_tag(r, &table)?;
    let count = r.get_varint()? as usize;
    let mut weights = BTreeMap::new();
    for _ in 0..count {
        let tag = table.tag_at(r.get_varint()?)?;
        let weight = r.get_f64()?;
        weights.insert(tag, weight);
    }
    if weights.len() != count {
        return Err(WireError::new("duplicate candidate in collapsed weights"));
    }
    Ok(CollapsedState {
        object,
        weights,
        container,
    })
}

fn encode_readings_state_body(w: &mut Writer, state: &ReadingsState) {
    let table = TagTable::from_tags(
        std::iter::once(state.object)
            .chain(state.container)
            .chain(state.readings.iter().map(|r| r.tag)),
    );
    table.encode(w);
    w.put_varint(table.index_of(state.object));
    put_opt_tag(w, &table, state.container);
    encode_reading_seq(w, &table, &state.readings);
}

fn decode_readings_state_body(r: &mut Reader<'_>) -> Result<ReadingsState, WireError> {
    let table = TagTable::decode(r)?;
    let object = table.tag_at(r.get_varint()?)?;
    let container = get_opt_tag(r, &table)?;
    let readings = decode_reading_seq(r, &table)?;
    Ok(ReadingsState {
        object,
        readings,
        container,
    })
}

/// Order-preserving reading sequence: per reading a tag-table index, the
/// epoch as a zigzag delta against the previous reading's epoch, and the
/// reader id. Time-sorted runs — the overwhelmingly common layout — cost one
/// byte of delta per reading; tag-grouped exports pay one longer (negative)
/// delta per group boundary.
fn encode_reading_seq(w: &mut Writer, table: &TagTable, readings: &[RawReading]) {
    w.put_varint(readings.len() as u64);
    let mut prev_epoch = 0i64;
    for reading in readings {
        w.put_varint(table.index_of(reading.tag));
        w.put_zigzag(i64::from(reading.time.0) - prev_epoch);
        prev_epoch = i64::from(reading.time.0);
        w.put_varint(u64::from(reading.reader.0));
    }
}

fn decode_reading_seq(r: &mut Reader<'_>, table: &TagTable) -> Result<Vec<RawReading>, WireError> {
    let count = r.get_varint()? as usize;
    let mut readings = Vec::with_capacity(count.min(1 << 20));
    let mut prev_epoch = 0i64;
    for _ in 0..count {
        let tag = table.tag_at(r.get_varint()?)?;
        let epoch = get_epoch(checked_delta(prev_epoch, r.get_zigzag()?, "reading epoch")?)?;
        prev_epoch = i64::from(epoch.0);
        let reader = r.get_varint()?;
        let reader = u16::try_from(reader)
            .map(ReaderId)
            .map_err(|_| WireError::new("reader id out of u16 range"))?;
        readings.push(RawReading::new(epoch, tag, reader));
    }
    Ok(readings)
}

pub(crate) fn encode_automaton(w: &mut Writer, automaton: &AutomatonState) {
    match automaton {
        AutomatonState::Idle => w.put_u8(AUTOMATON_IDLE),
        AutomatonState::Accumulating {
            since,
            readings,
            fired,
        } => {
            w.put_u8(AUTOMATON_ACCUMULATING);
            w.put_varint(u64::from(since.0));
            w.put_u8(u8::from(*fired));
            w.put_varint(readings.len() as u64);
            // Collected readings are in observation order, almost always
            // ascending from `since`; delta-encode against the previous one.
            let mut prev_epoch = i64::from(since.0);
            for (epoch, value) in readings {
                w.put_zigzag(i64::from(epoch.0) - prev_epoch);
                prev_epoch = i64::from(epoch.0);
                w.put_f64(*value);
            }
        }
    }
}

pub(crate) fn decode_automaton(r: &mut Reader<'_>) -> Result<AutomatonState, WireError> {
    match r.get_u8()? {
        AUTOMATON_IDLE => Ok(AutomatonState::Idle),
        AUTOMATON_ACCUMULATING => {
            let since = get_epoch(r.get_varint()? as i64)?;
            let fired = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::new("invalid fired flag")),
            };
            let count = r.get_varint()? as usize;
            let mut readings = Vec::with_capacity(count.min(1 << 20));
            let mut prev_epoch = i64::from(since.0);
            for _ in 0..count {
                let epoch = get_epoch(checked_delta(
                    prev_epoch,
                    r.get_zigzag()?,
                    "automaton epoch",
                )?)?;
                prev_epoch = i64::from(epoch.0);
                readings.push((epoch, r.get_f64()?));
            }
            Ok(AutomatonState::Accumulating {
                since,
                readings,
                fired,
            })
        }
        _ => Err(WireError::new("unknown automaton variant")),
    }
}

fn encode_delta(w: &mut Writer, delta: &StateDelta) {
    w.put_varint(delta.tag.raw());
    w.put_varint(u64::from(delta.len));
    match &delta.full {
        Some(full) => {
            w.put_u8(1);
            w.put_bytes(full);
        }
        None => {
            w.put_u8(0);
            w.put_varint(delta.edits.len() as u64);
            // Edit positions ascend (they are produced by a forward scan);
            // zigzag deltas keep arbitrary orders decodable all the same.
            let mut prev_pos = 0i64;
            for &(pos, byte) in &delta.edits {
                w.put_zigzag(i64::from(pos) - prev_pos);
                prev_pos = i64::from(pos);
                w.put_u8(byte);
            }
            w.put_bytes(&delta.suffix);
        }
    }
}

fn decode_delta(r: &mut Reader<'_>) -> Result<StateDelta, WireError> {
    let tag = TagId::from_raw(r.get_varint()?);
    let len = u32::try_from(r.get_varint()?)
        .map_err(|_| WireError::new("delta length out of u32 range"))?;
    match r.get_u8()? {
        1 => {
            let full = r.get_bytes()?;
            Ok(StateDelta {
                tag,
                edits: Vec::new(),
                suffix: Vec::new(),
                len,
                full: Some(full),
            })
        }
        0 => {
            let count = r.get_varint()? as usize;
            let mut edits = Vec::with_capacity(count.min(1 << 20));
            let mut prev_pos = 0i64;
            for _ in 0..count {
                let pos = checked_delta(prev_pos, r.get_zigzag()?, "edit position")?;
                prev_pos = pos;
                let pos = u32::try_from(pos)
                    .map_err(|_| WireError::new("edit position out of u32 range"))?;
                edits.push((pos, r.get_u8()?));
            }
            let suffix = r.get_bytes()?;
            Ok(StateDelta {
                tag,
                edits,
                suffix,
                len,
                full: None,
            })
        }
        _ => Err(WireError::new("invalid delta flag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codecs() -> [WireCodec; 2] {
        [
            WireCodec::new(WireFormat::Binary),
            WireCodec::new(WireFormat::Json),
        ]
    }

    fn collapsed() -> CollapsedState {
        CollapsedState {
            object: TagId::item(3),
            weights: [(TagId::case(1), 0.0), (TagId::case(2), -40.25)]
                .into_iter()
                .collect(),
            container: Some(TagId::case(1)),
        }
    }

    fn readings_state() -> ReadingsState {
        // Tag-grouped export order (object first, then each candidate),
        // exactly as `InferenceEngine::export_readings` produces it.
        let mut readings = Vec::new();
        for tag in [TagId::item(3), TagId::case(1), TagId::case(2)] {
            for t in 100..140u32 {
                readings.push(RawReading::new(Epoch(t), tag, ReaderId(2)));
            }
        }
        ReadingsState {
            object: TagId::item(3),
            readings,
            container: Some(TagId::case(1)),
        }
    }

    #[test]
    fn migration_states_round_trip_in_both_formats() {
        let states = [
            MigrationState::None,
            MigrationState::Collapsed(collapsed()),
            MigrationState::Readings(readings_state()),
        ];
        for codec in codecs() {
            for state in &states {
                let bytes = codec.encode_migration(state);
                assert_eq!(&codec.decode_migration(&bytes).unwrap(), state);
            }
        }
    }

    #[test]
    fn binary_collapsed_state_beats_json_and_the_old_estimate() {
        let state = collapsed();
        let binary = WireCodec::new(WireFormat::Binary);
        let json = WireCodec::new(WireFormat::Json);
        let compact = binary.encode_collapsed(&state).len();
        let verbose = json.encode_collapsed(&state).len();
        assert_eq!(
            binary
                .decode_collapsed(&binary.encode_collapsed(&state))
                .unwrap(),
            state
        );
        assert!(
            compact * 2 < verbose,
            "binary ({compact} B) should halve JSON ({verbose} B)"
        );
        // the seed's hand-estimated accounting charged 8 + 9 + 16/candidate
        assert!(compact < 8 + 9 + 16 * state.weights.len());
    }

    #[test]
    fn binary_reading_batches_cost_a_few_bytes_per_reading() {
        let state = readings_state();
        let binary = WireCodec::new(WireFormat::Binary);
        let bytes = binary.encode_readings(&state.readings);
        assert_eq!(binary.decode_readings(&bytes).unwrap(), state.readings);
        let per_reading = bytes.len() as f64 / state.readings.len() as f64;
        assert!(
            per_reading < 4.0,
            "sorted runs should cost ~3 B/reading, got {per_reading:.1}"
        );
        // the seed charged a flat 14 B/reading; binary must at least halve it
        assert!(bytes.len() * 2 < state.readings.len() * RawReading::WIRE_BYTES);
    }

    #[test]
    fn empty_payloads_round_trip() {
        for codec in codecs() {
            assert_eq!(
                codec.decode_readings(&codec.encode_readings(&[])).unwrap(),
                []
            );
            let empty = CollapsedState {
                object: TagId::item(1),
                weights: BTreeMap::new(),
                container: None,
            };
            assert_eq!(
                codec
                    .decode_collapsed(&codec.encode_collapsed(&empty))
                    .unwrap(),
                empty
            );
        }
    }

    #[test]
    fn query_state_and_payload_round_trip() {
        let state = ObjectQueryState {
            query: "Q1".to_string(),
            tag: TagId::item(9),
            automaton: AutomatonState::Accumulating {
                since: Epoch(500),
                readings: (0..20)
                    .map(|i| (Epoch(500 + i * 10), 21.0 + i as f64))
                    .collect(),
                fired: true,
            },
        };
        for codec in codecs() {
            let bytes = codec.encode_query_state(&state);
            assert_eq!(codec.decode_query_state(&bytes).unwrap(), state);
            let payload = codec.state_payload(&state);
            assert_eq!(
                codec.state_from_payload(state.tag, &payload).unwrap(),
                state
            );
        }
        // Raw f64 bits (8 B) can exceed short JSON float literals ("21.0"),
        // so the win on float-heavy query state is smaller than on
        // tag/epoch-heavy payloads — but binary must still come out ahead.
        let binary = WireCodec::new(WireFormat::Binary).encode_query_state(&state);
        let json = WireCodec::new(WireFormat::Json).encode_query_state(&state);
        assert!(binary.len() < json.len());
    }

    #[test]
    fn bundles_round_trip_including_full_fallbacks() {
        let bundle = SharedStateBundle {
            centroid_tag: TagId::item(1),
            centroid_bytes: vec![1, 2, 3, 4, 5],
            deltas: vec![
                StateDelta {
                    tag: TagId::item(2),
                    edits: vec![(0, 9), (3, 7)],
                    suffix: vec![8, 8],
                    len: 7,
                    full: None,
                },
                StateDelta {
                    tag: TagId::item(3),
                    edits: Vec::new(),
                    suffix: Vec::new(),
                    len: 2,
                    full: Some(vec![9, 9]),
                },
            ],
        };
        for codec in codecs() {
            let bytes = codec.encode_bundle(&bundle);
            assert_eq!(codec.decode_bundle(&bytes).unwrap(), bundle);
        }
    }

    #[test]
    fn corrupted_and_mismatched_headers_are_rejected() {
        let binary = WireCodec::new(WireFormat::Binary);
        let bytes = binary.encode_collapsed(&collapsed());
        assert!(binary.decode_readings(&bytes).is_err(), "kind mismatch");
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(binary.decode_collapsed(&wrong_version).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 1);
        assert!(binary.decode_collapsed(&truncated).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(binary.decode_collapsed(&trailing).is_err());
        assert!(binary.decode_migration(&[]).is_err());
    }
}
