//! The site-checkpoint payload family (`0x07`): a site's complete durable
//! state as one serialized artifact.
//!
//! A [`SiteCheckpoint`] bundles everything a crashed site needs to resume —
//! the inference engine's snapshot (observations, priors, containment,
//! detected changes, last outcome, dirty journal, evidence cache), the query
//! processor's snapshot (sensor window, automata, alerts), the trace cursors,
//! the pending-shipment inbox, and the communication accounting — under the
//! same framing as every other wire payload. Checkpoints therefore inherit
//! the codec's guarantees: `decode(encode(cp)) == cp` bit-exactly (including
//! `f64` bit patterns), and hostile bytes produce typed [`WireError`]s, never
//! panics.
//!
//! The binary body opens with one site-wide [`TagTable`] covering every tag
//! mentioned anywhere in the checkpoint; all tag references are table
//! indices, epoch sequences are zigzag deltas, and floats are raw IEEE-754
//! bits. The JSON arm is the plain `serde_json` serialization (no header),
//! like every other payload — note that, as with those payloads, JSON cannot
//! represent non-finite floats, so a checkpoint carrying an infinite
//! calibration threshold only round-trips through the binary format.

use crate::codec::{
    check_header, checked_delta, decode_automaton, encode_automaton, get_epoch, get_opt_tag,
    get_string, header, put_opt_tag,
};
use crate::primitives::{Reader, TagTable, Writer};
use crate::{WireCodec, WireError, WireFormat};
use rfid_core::InferenceStats;
use rfid_core::{
    CachedVariant, DetectedChange, DirtySet, EngineSnapshot, EvidenceCache, InferenceOutcome,
    ObjectEvidence, Observations, PriorWeights,
};
use rfid_query::{Alert, ObjectQueryState, ProcessorSnapshot};
use rfid_types::{ContainmentMap, Epoch, LocationId, RawReading, SensorReading, TagId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Payload-kind byte of a binary site checkpoint.
// FUZZ: corrupted_byte_zero_is_a_typed_error_for_every_kind
pub(crate) const KIND_CHECKPOINT: u8 = 0x07;

/// One shipment that had arrived at (or was in flight toward) a site when
/// its checkpoint was cut: the durable form of the driver's in-memory
/// shipment messages.
///
/// The migrated inference state stays in its *encoded* form (`inference`):
/// the bytes were produced by the sender's codec and are decoded only when
/// the shipment is delivered, so checkpointing never re-encodes them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingShipment {
    /// Epoch at which the shipment left its origin site.
    pub depart: Epoch,
    /// Origin site index.
    pub from: u16,
    /// Destination site index.
    pub to: u16,
    /// The shipped object.
    pub tag: TagId,
    /// Epoch at which the shipment arrives.
    pub arrive: Epoch,
    /// Per-edge transport sequence number (0 when the transport is off).
    pub seq: u64,
    /// Epoch at which the physical object arrives; `arrive` is when the
    /// *state message* is delivered, which trails it under retransmission.
    pub physical: Epoch,
    /// Encoded migration state travelling with the object, if any.
    pub inference: Option<Vec<u8>>,
    /// Query state travelling with the object.
    pub query: Vec<ObjectQueryState>,
}

/// Durable dedup state of one incoming transport edge: every sequence number
/// `<= watermark` has been delivered, plus a sparse set of out-of-order
/// extras above it.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeSeqs {
    /// The sending peer site.
    pub peer: u16,
    /// Highest sequence number below which everything was delivered.
    pub watermark: u64,
    /// Delivered sequence numbers above the watermark, ascending.
    pub extras: Vec<u64>,
}

/// Reliable-transport counters of one site (or, merged, a whole run).
///
/// Invariants the transport tests pin: `delivered + abandoned == envelopes`
/// where `delivered = envelopes - abandoned`, and
/// `duplicates_dropped == arrivals - deliveries`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Logical payloads handed to the transport (one per shipment group
    /// member or forwarded batch).
    pub envelopes: u64,
    /// Transmission attempts that left the sender (first sends and
    /// retransmissions).
    pub transmissions: u64,
    /// Attempts beyond the first per envelope.
    pub retransmissions: u64,
    /// Acks sent by receivers (lost or not).
    pub acks: u64,
    /// Arrivals dropped by receiver-side dedup.
    pub duplicates_dropped: u64,
    /// Late state messages merged into a live engine after a degraded
    /// cold-start ingest.
    pub reconciled: u64,
    /// Late state messages dropped because the object had already departed
    /// again.
    pub stale_dropped: u64,
    /// Envelopes that exhausted their retry budget (or the horizon) without
    /// a single arrival.
    pub abandoned: u64,
    /// Anti-entropy resync requests sent after downtime.
    pub resyncs: u64,
    /// Arrivals whose payload failed to decode and were quarantined instead
    /// of delivered (poison-message handling).
    pub quarantined: u64,
}

impl TransportStats {
    /// Fold `other` into `self` (all counters are additive).
    pub fn merge(&mut self, other: &TransportStats) {
        self.envelopes += other.envelopes;
        self.transmissions += other.transmissions;
        self.retransmissions += other.retransmissions;
        self.acks += other.acks;
        self.duplicates_dropped += other.duplicates_dropped;
        self.reconciled += other.reconciled;
        self.stale_dropped += other.stale_dropped;
        self.abandoned += other.abandoned;
        self.resyncs += other.resyncs;
        self.quarantined += other.quarantined;
    }

    /// Envelopes that reached their destination at least once.
    pub fn delivered(&self) -> u64 {
        self.envelopes.saturating_sub(self.abandoned)
    }
}

/// One quarantined arrival: an envelope whose payload failed to decode at
/// the receiver. Durable in the checkpoint so a crash-restore replay
/// converges on the same quarantine ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The sending peer site.
    pub from: u16,
    /// The envelope's per-edge transport sequence number.
    pub seq: u64,
    /// Epoch of the physical arrival the poisoned state message accompanied.
    pub physical: Epoch,
}

/// Per-directed-edge conservation ledger, filled on both ends of the edge:
/// the sender books what it hands to the transport, the receiver books what
/// comes out (copies still sitting in a dark receiver's inbox at the end of
/// the run are booked as undelivered). The invariant oracles check that the
/// two sides balance —
/// `envelopes == abandoned + accepted + dark_envelopes`,
/// `sent_copies == recv_copies + undelivered`,
/// `sent_bytes == recv_bytes + undelivered_bytes` and
/// `accepted == imported + stale + quarantined`
/// — so no envelope is ever silently lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeLedger {
    /// Origin site of the edge.
    pub from: u16,
    /// Destination site of the edge.
    pub to: u16,
    /// Envelopes the sender handed to the transport on this edge.
    pub envelopes: u64,
    /// Envelopes the sender gave up on (no copy ever arrives).
    pub abandoned: u64,
    /// Transmitted copies that arrive at the receiver (sender's view).
    pub sent_copies: u64,
    /// Payload bytes of those arriving copies (sender's view).
    pub sent_bytes: u64,
    /// Copies that actually arrived (receiver's view, before dedup).
    pub recv_copies: u64,
    /// Payload bytes of arrived copies (receiver's view).
    pub recv_bytes: u64,
    /// Envelopes accepted after dedup (first arrival of each sequence).
    pub accepted: u64,
    /// Accepted envelopes whose state was delivered or reconciled.
    pub imported: u64,
    /// Accepted envelopes dropped as stale (object already departed again).
    pub stale: u64,
    /// Accepted envelopes quarantined because their payload failed to
    /// decode.
    pub quarantined: u64,
    /// Copies still sitting undelivered in the receiver's inbox when the run
    /// ended (the receiver was down from their arrival through the horizon).
    pub undelivered: u64,
    /// Payload bytes of those undelivered copies.
    pub undelivered_bytes: u64,
    /// Envelopes none of whose copies were ever processed (every copy ended
    /// the run undelivered) — the receiver-side complement of `abandoned`.
    pub dark_envelopes: u64,
}

impl EdgeLedger {
    /// A zeroed ledger for one directed edge.
    pub fn new(from: u16, to: u16) -> EdgeLedger {
        EdgeLedger {
            from,
            to,
            ..EdgeLedger::default()
        }
    }

    /// Fold `other` (a ledger of the same edge) into `self`.
    pub fn merge(&mut self, other: &EdgeLedger) {
        self.envelopes += other.envelopes;
        self.abandoned += other.abandoned;
        self.sent_copies += other.sent_copies;
        self.sent_bytes += other.sent_bytes;
        self.recv_copies += other.recv_copies;
        self.recv_bytes += other.recv_bytes;
        self.accepted += other.accepted;
        self.imported += other.imported;
        self.stale += other.stale;
        self.quarantined += other.quarantined;
        self.undelivered += other.undelivered;
        self.undelivered_bytes += other.undelivered_bytes;
        self.dark_envelopes += other.dark_envelopes;
    }
}

/// A site's complete durable state at one epoch, as a wire payload.
///
/// Produced by the distributed driver's checkpoint policy and consumed on
/// restore after a crash; also a first-class serialized artifact (kind
/// `0x07`) that round-trips bitwise through [`WireCodec::encode_checkpoint`]
/// / [`WireCodec::decode_checkpoint`] in both wire formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteCheckpoint {
    /// The site this checkpoint belongs to.
    pub site: u16,
    /// The epoch at whose end the checkpoint was cut.
    pub at: Epoch,
    /// The inference engine's durable state.
    pub engine: EngineSnapshot,
    /// The query processor's durable state.
    pub processor: ProcessorSnapshot,
    /// Number of trace readings already ingested.
    pub reading_cursor: u64,
    /// Number of sensor readings already ingested.
    pub sensor_cursor: u64,
    /// Number of departures already processed.
    pub departure_cursor: u64,
    /// Shipments received but not yet delivered, in canonical
    /// `(depart, from, to, tag)` order.
    pub inbox: Vec<PendingShipment>,
    /// Communication bytes per message kind, in the kind-table order of the
    /// distributed layer (raw readings, inference state, query state, ONS,
    /// transport control). Encoded with a leading arity so a checkpoint
    /// written before a kind existed still decodes (missing kinds read as
    /// zero).
    pub comm_bytes: [u64; 5],
    /// Communication messages per kind, same order as `comm_bytes`.
    pub comm_messages: [u64; 5],
    /// Query-state bytes shipped with centroid sharing.
    pub shared_bytes: u64,
    /// Query-state bytes that would have shipped without sharing.
    pub unshared_bytes: u64,
    /// Inference runs executed so far.
    pub inference_runs: u64,
    /// Cache-reuse accounting accumulated so far.
    pub stats: InferenceStats,
    /// Per-in-edge transport dedup state, in ascending peer order.
    pub inbox_seqs: Vec<EdgeSeqs>,
    /// Reliable-transport counters accumulated so far.
    pub transport: TransportStats,
    /// Quarantined poison arrivals, in acceptance order.
    pub quarantine: Vec<QuarantineEntry>,
    /// Memory-pressure counters accumulated so far.
    pub memory: rfid_core::MemoryStats,
    /// Per-directed-edge conservation ledgers this site contributed to, in
    /// ascending `(from, to)` order.
    pub ledgers: Vec<EdgeLedger>,
}

impl WireCodec {
    /// Encode a site checkpoint.
    pub fn encode_checkpoint(&self, checkpoint: &SiteCheckpoint) -> Vec<u8> {
        match self.format() {
            WireFormat::Json => serde_json::to_vec(checkpoint).expect("checkpoint serializes"),
            WireFormat::Binary => {
                let mut w = header(KIND_CHECKPOINT);
                w.put_varint(u64::from(checkpoint.site));
                w.put_varint(u64::from(checkpoint.at.0));
                let table = collect_table(checkpoint);
                table.encode(&mut w);
                encode_engine(&mut w, &table, &checkpoint.engine);
                encode_processor(&mut w, &table, &checkpoint.processor);
                w.put_varint(checkpoint.reading_cursor);
                w.put_varint(checkpoint.sensor_cursor);
                w.put_varint(checkpoint.departure_cursor);
                w.put_varint(checkpoint.inbox.len() as u64);
                for shipment in &checkpoint.inbox {
                    encode_shipment(&mut w, &table, shipment);
                }
                // Versioned arity: the kind count leads each comm array, so
                // adding a kind never invalidates older checkpoints.
                w.put_varint(checkpoint.comm_bytes.len() as u64);
                for bytes in checkpoint.comm_bytes {
                    w.put_varint(bytes);
                }
                for messages in checkpoint.comm_messages {
                    w.put_varint(messages);
                }
                w.put_varint(checkpoint.shared_bytes);
                w.put_varint(checkpoint.unshared_bytes);
                w.put_varint(checkpoint.inference_runs);
                encode_stats(&mut w, &checkpoint.stats);
                w.put_varint(checkpoint.inbox_seqs.len() as u64);
                for edge in &checkpoint.inbox_seqs {
                    w.put_varint(u64::from(edge.peer));
                    w.put_varint(edge.watermark);
                    w.put_varint(edge.extras.len() as u64);
                    for &seq in &edge.extras {
                        w.put_varint(seq);
                    }
                }
                encode_transport(&mut w, &checkpoint.transport);
                w.put_varint(checkpoint.quarantine.len() as u64);
                for entry in &checkpoint.quarantine {
                    w.put_varint(u64::from(entry.from));
                    w.put_varint(entry.seq);
                    w.put_varint(u64::from(entry.physical.0));
                }
                encode_memory(&mut w, &checkpoint.memory);
                w.put_varint(checkpoint.ledgers.len() as u64);
                for ledger in &checkpoint.ledgers {
                    encode_ledger(&mut w, ledger);
                }
                w.into_bytes()
            }
        }
    }

    /// Decode a [`Self::encode_checkpoint`] message.
    pub fn decode_checkpoint(&self, bytes: &[u8]) -> Result<SiteCheckpoint, WireError> {
        match self.format() {
            WireFormat::Json => Ok(serde_json::from_slice(bytes)?),
            WireFormat::Binary => {
                let mut r = check_header(bytes, KIND_CHECKPOINT)?;
                let site = get_u16(r.get_varint()?, "site index")?;
                let at = get_epoch(cast_epoch(r.get_varint()?))?;
                let table = TagTable::decode(&mut r)?;
                let engine = decode_engine(&mut r, &table)?;
                let processor = decode_processor(&mut r, &table)?;
                let reading_cursor = r.get_varint()?;
                let sensor_cursor = r.get_varint()?;
                let departure_cursor = r.get_varint()?;
                let count = r.get_varint()? as usize;
                let mut inbox = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    inbox.push(decode_shipment(&mut r, &table)?);
                }
                let kinds = r.get_varint()? as usize;
                if kinds > 5 {
                    return Err(WireError::new(format!(
                        "checkpoint declares {kinds} message kinds, this codec knows 5"
                    )));
                }
                let mut comm_bytes = [0u64; 5];
                for slot in comm_bytes.iter_mut().take(kinds) {
                    *slot = r.get_varint()?;
                }
                let mut comm_messages = [0u64; 5];
                for slot in comm_messages.iter_mut().take(kinds) {
                    *slot = r.get_varint()?;
                }
                let shared_bytes = r.get_varint()?;
                let unshared_bytes = r.get_varint()?;
                let inference_runs = r.get_varint()?;
                let stats = decode_stats(&mut r)?;
                let edge_count = r.get_varint()? as usize;
                let mut inbox_seqs = Vec::with_capacity(edge_count.min(1 << 16));
                for _ in 0..edge_count {
                    let peer = get_u16(r.get_varint()?, "edge peer")?;
                    let watermark = r.get_varint()?;
                    let extra_count = r.get_varint()? as usize;
                    let mut extras = Vec::with_capacity(extra_count.min(1 << 16));
                    for _ in 0..extra_count {
                        extras.push(r.get_varint()?);
                    }
                    inbox_seqs.push(EdgeSeqs {
                        peer,
                        watermark,
                        extras,
                    });
                }
                let transport = decode_transport(&mut r)?;
                let count = r.get_varint()? as usize;
                let mut quarantine = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    quarantine.push(QuarantineEntry {
                        from: get_u16(r.get_varint()?, "quarantine peer")?,
                        seq: r.get_varint()?,
                        physical: get_epoch(cast_epoch(r.get_varint()?))?,
                    });
                }
                let memory = decode_memory(&mut r)?;
                let count = r.get_varint()? as usize;
                let mut ledgers = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    ledgers.push(decode_ledger(&mut r)?);
                }
                r.expect_exhausted()?;
                Ok(SiteCheckpoint {
                    site,
                    at,
                    engine,
                    processor,
                    reading_cursor,
                    sensor_cursor,
                    departure_cursor,
                    inbox,
                    comm_bytes,
                    comm_messages,
                    shared_bytes,
                    unshared_bytes,
                    inference_runs,
                    stats,
                    inbox_seqs,
                    transport,
                    quarantine,
                    memory,
                    ledgers,
                })
            }
        }
    }
}

/// The site-wide tag table: every tag mentioned anywhere in the checkpoint,
/// collected once so all sections share indices.
fn collect_table(checkpoint: &SiteCheckpoint) -> TagTable {
    let mut tags: Vec<TagId> = Vec::new();
    let engine = &checkpoint.engine;
    tags.extend(engine.store.tags());
    for object in engine.prior.objects() {
        tags.push(object);
        tags.extend(engine.prior.entries_for(object).map(|(c, _)| c));
    }
    for (object, container) in engine.containment.iter() {
        tags.push(object);
        tags.push(container);
    }
    for change in &engine.detected {
        tags.push(change.object);
        tags.extend(change.old_container);
        tags.extend(change.new_container);
    }
    if let Some(outcome) = &engine.last_outcome {
        for (object, container) in outcome.containment.iter() {
            tags.push(object);
            tags.push(container);
        }
        for (object, evidence) in &outcome.objects {
            tags.push(*object);
            tags.extend(evidence.candidates.iter().copied());
            tags.extend(evidence.weights.keys().copied());
            tags.extend(evidence.point_evidence.keys().copied());
            tags.extend(evidence.assigned);
        }
        tags.extend(outcome.tag_locations.keys().copied());
    }
    for (tag, _) in engine.dirty.entries() {
        tags.push(tag);
    }
    for (container, variants) in engine.cache.variants() {
        tags.push(container);
        for variant in variants {
            tags.extend(variant.members.iter().copied());
            tags.extend(variant.evidence.keys().copied());
        }
    }
    for state in &checkpoint.processor.automata {
        tags.push(state.tag);
    }
    for alert in &checkpoint.processor.alerts {
        tags.push(alert.tag);
    }
    for shipment in &checkpoint.inbox {
        tags.push(shipment.tag);
        tags.extend(shipment.query.iter().map(|s| s.tag));
    }
    TagTable::from_tags(tags)
}

// ---------------------------------------------------------------------------
// small shared pieces

/// A `u64` varint that must fit `u16` (site and location indices).
fn get_u16(raw: u64, what: &str) -> Result<u16, WireError> {
    u16::try_from(raw).map_err(|_| WireError::new(format!("{what} out of u16 range")))
}

/// Reinterpret an epoch varint for [`get_epoch`]'s range check: values past
/// `i64::MAX` become negative and are rejected there, exactly like oversized
/// epochs.
fn cast_epoch(raw: u64) -> i64 {
    raw as i64
}

fn encode_stats(w: &mut Writer, stats: &InferenceStats) {
    w.put_varint(stats.dirty_tags as u64);
    w.put_varint(stats.posteriors_reused as u64);
    w.put_varint(stats.posteriors_computed as u64);
    w.put_varint(stats.evidence_reused as u64);
    w.put_varint(stats.evidence_computed as u64);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<InferenceStats, WireError> {
    Ok(InferenceStats {
        dirty_tags: r.get_varint()? as usize,
        posteriors_reused: r.get_varint()? as usize,
        posteriors_computed: r.get_varint()? as usize,
        evidence_reused: r.get_varint()? as usize,
        evidence_computed: r.get_varint()? as usize,
    })
}

/// Transport counters with a leading arity, like the comm arrays: counters
/// appended in later versions read as zero from older checkpoints.
fn encode_transport(w: &mut Writer, transport: &TransportStats) {
    let counters = [
        transport.envelopes,
        transport.transmissions,
        transport.retransmissions,
        transport.acks,
        transport.duplicates_dropped,
        transport.reconciled,
        transport.stale_dropped,
        transport.abandoned,
        transport.resyncs,
        transport.quarantined,
    ];
    w.put_varint(counters.len() as u64);
    for counter in counters {
        w.put_varint(counter);
    }
}

fn decode_transport(r: &mut Reader<'_>) -> Result<TransportStats, WireError> {
    let arity = r.get_varint()? as usize;
    if arity > 10 {
        return Err(WireError::new(format!(
            "checkpoint declares {arity} transport counters, this codec knows 10"
        )));
    }
    let mut counters = [0u64; 10];
    for slot in counters.iter_mut().take(arity) {
        *slot = r.get_varint()?;
    }
    let [envelopes, transmissions, retransmissions, acks, duplicates_dropped, reconciled, stale_dropped, abandoned, resyncs, quarantined] =
        counters;
    Ok(TransportStats {
        envelopes,
        transmissions,
        retransmissions,
        acks,
        duplicates_dropped,
        reconciled,
        stale_dropped,
        abandoned,
        resyncs,
        quarantined,
    })
}

/// Memory-pressure counters with a leading arity, like the transport block.
fn encode_memory(w: &mut Writer, memory: &rfid_core::MemoryStats) {
    let counters = [
        memory.high_water,
        memory.compactions,
        memory.compacted_observations,
        memory.evicted_cache_entries,
    ];
    w.put_varint(counters.len() as u64);
    for counter in counters {
        w.put_varint(counter);
    }
}

fn decode_memory(r: &mut Reader<'_>) -> Result<rfid_core::MemoryStats, WireError> {
    let arity = r.get_varint()? as usize;
    if arity > 4 {
        return Err(WireError::new(format!(
            "checkpoint declares {arity} memory counters, this codec knows 4"
        )));
    }
    let mut counters = [0u64; 4];
    for slot in counters.iter_mut().take(arity) {
        *slot = r.get_varint()?;
    }
    let [high_water, compactions, compacted_observations, evicted_cache_entries] = counters;
    Ok(rfid_core::MemoryStats {
        high_water,
        compactions,
        compacted_observations,
        evicted_cache_entries,
    })
}

/// One per-edge conservation ledger: the endpoint pair, then an
/// arity-prefixed counter block so later versions can append counters.
fn encode_ledger(w: &mut Writer, ledger: &EdgeLedger) {
    w.put_varint(u64::from(ledger.from));
    w.put_varint(u64::from(ledger.to));
    let counters = [
        ledger.envelopes,
        ledger.abandoned,
        ledger.sent_copies,
        ledger.sent_bytes,
        ledger.recv_copies,
        ledger.recv_bytes,
        ledger.accepted,
        ledger.imported,
        ledger.stale,
        ledger.quarantined,
        ledger.undelivered,
        ledger.undelivered_bytes,
        ledger.dark_envelopes,
    ];
    w.put_varint(counters.len() as u64);
    for counter in counters {
        w.put_varint(counter);
    }
}

fn decode_ledger(r: &mut Reader<'_>) -> Result<EdgeLedger, WireError> {
    let from = get_u16(r.get_varint()?, "ledger origin")?;
    let to = get_u16(r.get_varint()?, "ledger destination")?;
    let arity = r.get_varint()? as usize;
    if arity > 13 {
        return Err(WireError::new(format!(
            "checkpoint declares {arity} ledger counters, this codec knows 13"
        )));
    }
    let mut counters = [0u64; 13];
    for slot in counters.iter_mut().take(arity) {
        *slot = r.get_varint()?;
    }
    let [envelopes, abandoned, sent_copies, sent_bytes, recv_copies, recv_bytes, accepted, imported, stale, quarantined, undelivered, undelivered_bytes, dark_envelopes] =
        counters;
    Ok(EdgeLedger {
        from,
        to,
        envelopes,
        abandoned,
        sent_copies,
        sent_bytes,
        recv_copies,
        recv_bytes,
        accepted,
        imported,
        stale,
        quarantined,
        undelivered,
        undelivered_bytes,
        dark_envelopes,
    })
}

/// `(epoch, f64)` series: count, then per entry a zigzag epoch delta against
/// the previous entry (starting from 0) and the raw float bits.
fn put_series(w: &mut Writer, series: &[(Epoch, f64)]) {
    w.put_varint(series.len() as u64);
    let mut prev = 0i64;
    for (epoch, value) in series {
        w.put_zigzag(i64::from(epoch.0) - prev);
        prev = i64::from(epoch.0);
        w.put_f64(*value);
    }
}

fn get_series(r: &mut Reader<'_>, what: &str) -> Result<Vec<(Epoch, f64)>, WireError> {
    let count = r.get_varint()? as usize;
    let mut series = Vec::with_capacity(count.min(1 << 20));
    let mut prev = 0i64;
    for _ in 0..count {
        let epoch = get_epoch(checked_delta(prev, r.get_zigzag()?, what)?)?;
        prev = i64::from(epoch.0);
        series.push((epoch, r.get_f64()?));
    }
    Ok(series)
}

/// Tag-keyed map of `(epoch, f64)` series (point evidence, cached evidence).
fn put_series_map(w: &mut Writer, table: &TagTable, map: &BTreeMap<TagId, Vec<(Epoch, f64)>>) {
    w.put_varint(map.len() as u64);
    for (tag, series) in map {
        w.put_varint(table.index_of(*tag));
        put_series(w, series);
    }
}

fn get_series_map(
    r: &mut Reader<'_>,
    table: &TagTable,
    what: &str,
) -> Result<BTreeMap<TagId, Vec<(Epoch, f64)>>, WireError> {
    let count = r.get_varint()? as usize;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let tag = table.tag_at(r.get_varint()?)?;
        let series = get_series(r, what)?;
        map.insert(tag, series);
    }
    if map.len() != count {
        return Err(WireError::new("duplicate tag in series map"));
    }
    Ok(map)
}

fn put_containment(w: &mut Writer, table: &TagTable, map: &ContainmentMap) {
    w.put_varint(map.iter().count() as u64);
    for (object, container) in map.iter() {
        w.put_varint(table.index_of(object));
        w.put_varint(table.index_of(container));
    }
}

fn get_containment(r: &mut Reader<'_>, table: &TagTable) -> Result<ContainmentMap, WireError> {
    let count = r.get_varint()? as usize;
    let mut map = ContainmentMap::new();
    for _ in 0..count {
        let object = table.tag_at(r.get_varint()?)?;
        let container = table.tag_at(r.get_varint()?)?;
        map.set(object, container);
    }
    Ok(map)
}

fn put_query_state(w: &mut Writer, table: &TagTable, state: &ObjectQueryState) {
    w.put_bytes(state.query.as_bytes());
    w.put_varint(table.index_of(state.tag));
    encode_automaton(w, &state.automaton);
}

fn get_query_state(r: &mut Reader<'_>, table: &TagTable) -> Result<ObjectQueryState, WireError> {
    let query = get_string(r)?;
    let tag = table.tag_at(r.get_varint()?)?;
    let automaton = decode_automaton(r)?;
    Ok(ObjectQueryState {
        query,
        tag,
        automaton,
    })
}

// ---------------------------------------------------------------------------
// engine snapshot

fn encode_engine(w: &mut Writer, table: &TagTable, engine: &EngineSnapshot) {
    encode_store(w, table, &engine.store);
    encode_prior(w, table, &engine.prior);
    put_containment(w, table, &engine.containment);
    encode_changes(w, table, &engine.detected);
    match &engine.last_outcome {
        Some(outcome) => {
            w.put_u8(1);
            encode_outcome(w, table, outcome);
        }
        None => w.put_u8(0),
    }
    match engine.last_inference_at {
        Some(at) => {
            w.put_u8(1);
            w.put_varint(u64::from(at.0));
        }
        None => w.put_u8(0),
    }
    match engine.threshold {
        Some(threshold) => {
            w.put_u8(1);
            w.put_f64(threshold);
        }
        None => w.put_u8(0),
    }
    encode_dirty(w, table, &engine.dirty);
    encode_cache(w, table, &engine.cache);
}

fn decode_engine(r: &mut Reader<'_>, table: &TagTable) -> Result<EngineSnapshot, WireError> {
    let store = decode_store(r, table)?;
    let prior = decode_prior(r, table)?;
    let containment = get_containment(r, table)?;
    let detected = decode_changes(r, table)?;
    let last_outcome = match r.get_u8()? {
        0 => None,
        1 => Some(decode_outcome(r, table)?),
        _ => return Err(WireError::new("invalid outcome flag")),
    };
    let last_inference_at = match r.get_u8()? {
        0 => None,
        1 => Some(get_epoch(cast_epoch(r.get_varint()?))?),
        _ => return Err(WireError::new("invalid inference-epoch flag")),
    };
    let threshold = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_f64()?),
        _ => return Err(WireError::new("invalid threshold flag")),
    };
    let dirty = decode_dirty(r, table)?;
    let cache = decode_cache(r, table)?;
    Ok(EngineSnapshot {
        store,
        prior,
        containment,
        detected,
        last_outcome,
        last_inference_at,
        threshold,
        dirty,
        cache,
    })
}

fn encode_store(w: &mut Writer, table: &TagTable, store: &Observations) {
    w.put_varint(store.tags().count() as u64);
    for (tag, obs_list) in store.entries() {
        w.put_varint(table.index_of(tag));
        w.put_varint(obs_list.len() as u64);
        let mut prev = 0i64;
        for obs in obs_list {
            w.put_zigzag(i64::from(obs.epoch.0) - prev);
            prev = i64::from(obs.epoch.0);
            w.put_varint(obs.readers.len() as u64);
            for location in &obs.readers {
                w.put_varint(u64::from(location.0));
            }
        }
    }
}

fn decode_store(r: &mut Reader<'_>, table: &TagTable) -> Result<Observations, WireError> {
    let mut store = Observations::new();
    let tags = r.get_varint()? as usize;
    for _ in 0..tags {
        let tag = table.tag_at(r.get_varint()?)?;
        let count = r.get_varint()? as usize;
        let mut prev = 0i64;
        for _ in 0..count {
            let epoch = get_epoch(checked_delta(prev, r.get_zigzag()?, "observation epoch")?)?;
            prev = i64::from(epoch.0);
            let readers = r.get_varint()? as usize;
            for _ in 0..readers {
                let location = LocationId(get_u16(r.get_varint()?, "location id")?);
                store.insert(RawReading::new(epoch, tag, location.reader()));
            }
        }
    }
    Ok(store)
}

fn encode_prior(w: &mut Writer, table: &TagTable, prior: &PriorWeights) {
    w.put_varint(prior.objects().count() as u64);
    for object in prior.objects() {
        w.put_varint(table.index_of(object));
        w.put_varint(prior.entries_for(object).count() as u64);
        for (container, weight) in prior.entries_for(object) {
            w.put_varint(table.index_of(container));
            w.put_f64(weight);
        }
    }
}

fn decode_prior(r: &mut Reader<'_>, table: &TagTable) -> Result<PriorWeights, WireError> {
    let mut prior = PriorWeights::empty();
    let objects = r.get_varint()? as usize;
    for _ in 0..objects {
        let object = table.tag_at(r.get_varint()?)?;
        let count = r.get_varint()? as usize;
        for _ in 0..count {
            let container = table.tag_at(r.get_varint()?)?;
            let weight = r.get_f64()?;
            prior.set(object, container, weight);
        }
    }
    Ok(prior)
}

fn encode_changes(w: &mut Writer, table: &TagTable, changes: &[DetectedChange]) {
    w.put_varint(changes.len() as u64);
    for change in changes {
        w.put_varint(table.index_of(change.object));
        w.put_varint(u64::from(change.change_at.0));
        put_opt_tag(w, table, change.old_container);
        put_opt_tag(w, table, change.new_container);
        w.put_f64(change.statistic);
    }
}

fn decode_changes(r: &mut Reader<'_>, table: &TagTable) -> Result<Vec<DetectedChange>, WireError> {
    let count = r.get_varint()? as usize;
    let mut changes = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let object = table.tag_at(r.get_varint()?)?;
        let change_at = get_epoch(cast_epoch(r.get_varint()?))?;
        let old_container = get_opt_tag(r, table)?;
        let new_container = get_opt_tag(r, table)?;
        let statistic = r.get_f64()?;
        changes.push(DetectedChange {
            object,
            change_at,
            old_container,
            new_container,
            statistic,
        });
    }
    Ok(changes)
}

fn encode_outcome(w: &mut Writer, table: &TagTable, outcome: &InferenceOutcome) {
    put_containment(w, table, &outcome.containment);
    w.put_varint(outcome.objects.len() as u64);
    for (object, evidence) in &outcome.objects {
        w.put_varint(table.index_of(*object));
        w.put_varint(evidence.candidates.len() as u64);
        for candidate in &evidence.candidates {
            w.put_varint(table.index_of(*candidate));
        }
        w.put_varint(evidence.weights.len() as u64);
        for (candidate, weight) in &evidence.weights {
            w.put_varint(table.index_of(*candidate));
            w.put_f64(*weight);
        }
        put_series_map(w, table, &evidence.point_evidence);
        put_opt_tag(w, table, evidence.assigned);
    }
    w.put_varint(outcome.tag_locations.len() as u64);
    for (tag, locations) in &outcome.tag_locations {
        w.put_varint(table.index_of(*tag));
        w.put_varint(locations.len() as u64);
        let mut prev = 0i64;
        for (epoch, location) in locations {
            w.put_zigzag(i64::from(epoch.0) - prev);
            prev = i64::from(epoch.0);
            w.put_varint(u64::from(location.0));
        }
    }
    w.put_varint(outcome.iterations as u64);
    w.put_varint(outcome.num_locations as u64);
}

fn decode_outcome(r: &mut Reader<'_>, table: &TagTable) -> Result<InferenceOutcome, WireError> {
    let containment = get_containment(r, table)?;
    let object_count = r.get_varint()? as usize;
    let mut objects = BTreeMap::new();
    for _ in 0..object_count {
        let object = table.tag_at(r.get_varint()?)?;
        let candidate_count = r.get_varint()? as usize;
        let mut candidates = Vec::with_capacity(candidate_count.min(1 << 16));
        for _ in 0..candidate_count {
            candidates.push(table.tag_at(r.get_varint()?)?);
        }
        let weight_count = r.get_varint()? as usize;
        let mut weights = BTreeMap::new();
        for _ in 0..weight_count {
            let candidate = table.tag_at(r.get_varint()?)?;
            let weight = r.get_f64()?;
            weights.insert(candidate, weight);
        }
        if weights.len() != weight_count {
            return Err(WireError::new("duplicate candidate in outcome weights"));
        }
        let point_evidence = get_series_map(r, table, "point-evidence epoch")?;
        let assigned = get_opt_tag(r, table)?;
        objects.insert(
            object,
            ObjectEvidence {
                candidates,
                weights,
                point_evidence,
                assigned,
            },
        );
    }
    if objects.len() != object_count {
        return Err(WireError::new("duplicate object in outcome"));
    }
    let location_count = r.get_varint()? as usize;
    let mut tag_locations = BTreeMap::new();
    for _ in 0..location_count {
        let tag = table.tag_at(r.get_varint()?)?;
        let count = r.get_varint()? as usize;
        let mut series = Vec::with_capacity(count.min(1 << 20));
        let mut prev = 0i64;
        for _ in 0..count {
            let epoch = get_epoch(checked_delta(prev, r.get_zigzag()?, "location epoch")?)?;
            prev = i64::from(epoch.0);
            let location = LocationId(get_u16(r.get_varint()?, "location id")?);
            series.push((epoch, location));
        }
        tag_locations.insert(tag, series);
    }
    if tag_locations.len() != location_count {
        return Err(WireError::new("duplicate tag in location map"));
    }
    let iterations = r.get_varint()? as usize;
    let num_locations = r.get_varint()? as usize;
    Ok(InferenceOutcome {
        containment,
        objects,
        tag_locations,
        iterations,
        num_locations,
    })
}

fn encode_dirty(w: &mut Writer, table: &TagTable, dirty: &DirtySet) {
    w.put_varint(dirty.num_tags() as u64);
    for (tag, epochs) in dirty.entries() {
        w.put_varint(table.index_of(tag));
        w.put_varint(epochs.len() as u64);
        let mut prev = 0i64;
        for epoch in epochs {
            w.put_zigzag(i64::from(epoch.0) - prev);
            prev = i64::from(epoch.0);
        }
    }
}

fn decode_dirty(r: &mut Reader<'_>, table: &TagTable) -> Result<DirtySet, WireError> {
    let mut dirty = DirtySet::new();
    let tags = r.get_varint()? as usize;
    for _ in 0..tags {
        let tag = table.tag_at(r.get_varint()?)?;
        dirty.mark(tag);
        let count = r.get_varint()? as usize;
        let mut prev = 0i64;
        for _ in 0..count {
            let epoch = get_epoch(checked_delta(prev, r.get_zigzag()?, "dirty epoch")?)?;
            prev = i64::from(epoch.0);
            dirty.record(tag, epoch);
        }
    }
    Ok(dirty)
}

fn encode_cache(w: &mut Writer, table: &TagTable, cache: &EvidenceCache) {
    w.put_varint(cache.variants().count() as u64);
    for (container, variants) in cache.variants() {
        w.put_varint(table.index_of(container));
        w.put_varint(variants.len() as u64);
        for variant in variants {
            w.put_varint(variant.members.len() as u64);
            for member in &variant.members {
                w.put_varint(table.index_of(*member));
            }
            w.put_varint(variant.epochs.len() as u64);
            let mut prev = 0i64;
            for epoch in &variant.epochs {
                w.put_zigzag(i64::from(epoch.0) - prev);
                prev = i64::from(epoch.0);
            }
            w.put_varint(variant.qrows.len() as u64);
            for row_value in &variant.qrows {
                w.put_f64(*row_value);
            }
            put_series_map(w, table, &variant.evidence);
        }
    }
}

fn decode_cache(r: &mut Reader<'_>, table: &TagTable) -> Result<EvidenceCache, WireError> {
    let mut cache = EvidenceCache::new();
    let containers = r.get_varint()? as usize;
    for _ in 0..containers {
        let container = table.tag_at(r.get_varint()?)?;
        let variant_count = r.get_varint()? as usize;
        let mut variants = Vec::with_capacity(variant_count.min(1 << 8));
        for _ in 0..variant_count {
            let member_count = r.get_varint()? as usize;
            let mut members = Vec::with_capacity(member_count.min(1 << 16));
            for _ in 0..member_count {
                members.push(table.tag_at(r.get_varint()?)?);
            }
            let epoch_count = r.get_varint()? as usize;
            let mut epochs = Vec::with_capacity(epoch_count.min(1 << 20));
            let mut prev = 0i64;
            for _ in 0..epoch_count {
                let epoch = get_epoch(checked_delta(prev, r.get_zigzag()?, "cache epoch")?)?;
                prev = i64::from(epoch.0);
                epochs.push(epoch);
            }
            let qrow_count = r.get_varint()? as usize;
            let mut qrows = Vec::with_capacity(qrow_count.min(1 << 20));
            for _ in 0..qrow_count {
                qrows.push(r.get_f64()?);
            }
            let evidence = get_series_map(r, table, "cache-evidence epoch")?;
            variants.push(CachedVariant {
                members,
                epochs,
                qrows,
                evidence,
            });
        }
        cache.set_variants(container, variants);
    }
    Ok(cache)
}

// ---------------------------------------------------------------------------
// processor snapshot

fn encode_processor(w: &mut Writer, table: &TagTable, processor: &ProcessorSnapshot) {
    w.put_varint(processor.temperatures.len() as u64);
    for reading in &processor.temperatures {
        w.put_varint(u64::from(reading.time.0));
        w.put_varint(u64::from(reading.location.0));
        w.put_f64(reading.value);
    }
    w.put_varint(processor.automata.len() as u64);
    for state in &processor.automata {
        put_query_state(w, table, state);
    }
    w.put_varint(processor.alerts.len() as u64);
    for alert in &processor.alerts {
        w.put_bytes(alert.query.as_bytes());
        w.put_varint(table.index_of(alert.tag));
        w.put_varint(u64::from(alert.since.0));
        w.put_varint(u64::from(alert.at.0));
        put_series(w, &alert.readings);
    }
}

fn decode_processor(r: &mut Reader<'_>, table: &TagTable) -> Result<ProcessorSnapshot, WireError> {
    let temperature_count = r.get_varint()? as usize;
    let mut temperatures = Vec::with_capacity(temperature_count.min(1 << 16));
    for _ in 0..temperature_count {
        let time = get_epoch(cast_epoch(r.get_varint()?))?;
        let location = LocationId(get_u16(r.get_varint()?, "location id")?);
        let value = r.get_f64()?;
        temperatures.push(SensorReading::new(time, location, value));
    }
    let automaton_count = r.get_varint()? as usize;
    let mut automata = Vec::with_capacity(automaton_count.min(1 << 16));
    for _ in 0..automaton_count {
        automata.push(get_query_state(r, table)?);
    }
    let alert_count = r.get_varint()? as usize;
    let mut alerts = Vec::with_capacity(alert_count.min(1 << 16));
    for _ in 0..alert_count {
        let query = get_string(r)?;
        let tag = table.tag_at(r.get_varint()?)?;
        let since = get_epoch(cast_epoch(r.get_varint()?))?;
        let at = get_epoch(cast_epoch(r.get_varint()?))?;
        let readings = get_series(r, "alert epoch")?;
        alerts.push(Alert {
            query,
            tag,
            since,
            at,
            readings,
        });
    }
    Ok(ProcessorSnapshot {
        temperatures,
        automata,
        alerts,
    })
}

// ---------------------------------------------------------------------------
// inbox

fn encode_shipment(w: &mut Writer, table: &TagTable, shipment: &PendingShipment) {
    w.put_varint(u64::from(shipment.depart.0));
    w.put_varint(u64::from(shipment.from));
    w.put_varint(u64::from(shipment.to));
    w.put_varint(table.index_of(shipment.tag));
    w.put_varint(u64::from(shipment.arrive.0));
    w.put_varint(shipment.seq);
    w.put_varint(u64::from(shipment.physical.0));
    match &shipment.inference {
        Some(bytes) => {
            w.put_u8(1);
            w.put_bytes(bytes);
        }
        None => w.put_u8(0),
    }
    w.put_varint(shipment.query.len() as u64);
    for state in &shipment.query {
        put_query_state(w, table, state);
    }
}

fn decode_shipment(r: &mut Reader<'_>, table: &TagTable) -> Result<PendingShipment, WireError> {
    let depart = get_epoch(cast_epoch(r.get_varint()?))?;
    let from = get_u16(r.get_varint()?, "origin site")?;
    let to = get_u16(r.get_varint()?, "destination site")?;
    let tag = table.tag_at(r.get_varint()?)?;
    let arrive = get_epoch(cast_epoch(r.get_varint()?))?;
    let seq = r.get_varint()?;
    let physical = get_epoch(cast_epoch(r.get_varint()?))?;
    let inference = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_bytes()?),
        _ => return Err(WireError::new("invalid inference flag")),
    };
    let count = r.get_varint()? as usize;
    let mut query = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        query.push(get_query_state(r, table)?);
    }
    Ok(PendingShipment {
        depart,
        from,
        to,
        tag,
        arrive,
        seq,
        physical,
        inference,
        query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_query::AutomatonState;
    use rfid_types::ReaderId;

    fn codecs() -> [WireCodec; 2] {
        [
            WireCodec::new(WireFormat::Binary),
            WireCodec::new(WireFormat::Json),
        ]
    }

    /// A checkpoint exercising every section: observations, priors,
    /// containment, detected changes, a full outcome, dirty journal,
    /// evidence cache, processor state with alerts, a pending shipment, and
    /// non-zero accounting.
    fn sample() -> SiteCheckpoint {
        let mut store = Observations::new();
        for t in 0..5u32 {
            store.insert(RawReading::new(Epoch(t), TagId::item(1), ReaderId(0)));
            store.insert(RawReading::new(Epoch(t), TagId::case(1), ReaderId(0)));
        }
        let mut prior = PriorWeights::empty();
        prior.set(TagId::item(1), TagId::case(1), -0.5);
        prior.set(TagId::item(1), TagId::case(2), -40.25);
        let mut containment = ContainmentMap::new();
        containment.set(TagId::item(1), TagId::case(1));
        let mut dirty = DirtySet::new();
        dirty.mark(TagId::item(2));
        dirty.record(TagId::item(1), Epoch(4));
        let mut cache = EvidenceCache::new();
        cache.set_variants(
            TagId::case(1),
            vec![CachedVariant {
                members: vec![TagId::item(1)],
                epochs: vec![Epoch(1), Epoch(3)],
                qrows: vec![0.25, 0.75, -0.0, 1.0],
                evidence: [(TagId::item(1), vec![(Epoch(1), 0.5), (Epoch(3), 1.5)])]
                    .into_iter()
                    .collect(),
            }],
        );
        let outcome = InferenceOutcome {
            containment: containment.clone(),
            objects: [(
                TagId::item(1),
                ObjectEvidence {
                    candidates: vec![TagId::case(1), TagId::case(2)],
                    weights: [(TagId::case(1), 4.5), (TagId::case(2), -1e-300)]
                        .into_iter()
                        .collect(),
                    point_evidence: [(TagId::case(1), vec![(Epoch(0), 0.5), (Epoch(4), 0.25)])]
                        .into_iter()
                        .collect(),
                    assigned: Some(TagId::case(1)),
                },
            )]
            .into_iter()
            .collect(),
            tag_locations: [(TagId::case(1), vec![(Epoch(0), LocationId(0))])]
                .into_iter()
                .collect(),
            iterations: 3,
            num_locations: 4,
        };
        let engine = EngineSnapshot {
            store,
            prior,
            containment,
            detected: vec![DetectedChange {
                object: TagId::item(1),
                change_at: Epoch(3),
                old_container: Some(TagId::case(2)),
                new_container: Some(TagId::case(1)),
                statistic: 7.25,
            }],
            last_outcome: Some(outcome),
            last_inference_at: Some(Epoch(4)),
            threshold: Some(5.5),
            dirty,
            cache,
        };
        let processor = ProcessorSnapshot {
            temperatures: vec![SensorReading::new(Epoch(2), LocationId(1), 21.5)],
            automata: vec![ObjectQueryState {
                query: "Q1".to_string(),
                tag: TagId::item(1),
                automaton: AutomatonState::Accumulating {
                    since: Epoch(1),
                    readings: vec![(Epoch(1), 21.5), (Epoch(2), 22.0)],
                    fired: false,
                },
            }],
            alerts: vec![Alert {
                query: "Q1".to_string(),
                tag: TagId::item(7),
                since: Epoch(0),
                at: Epoch(3),
                readings: vec![(Epoch(0), 20.0), (Epoch(3), 24.0)],
            }],
        };
        SiteCheckpoint {
            site: 2,
            at: Epoch(4),
            engine,
            processor,
            reading_cursor: 10,
            sensor_cursor: 1,
            departure_cursor: 0,
            inbox: vec![PendingShipment {
                depart: Epoch(3),
                from: 1,
                to: 2,
                tag: TagId::item(9),
                arrive: Epoch(5),
                seq: 17,
                physical: Epoch(4),
                inference: Some(vec![1, 2, 3]),
                query: vec![ObjectQueryState {
                    query: "Q2".to_string(),
                    tag: TagId::item(9),
                    automaton: AutomatonState::Idle,
                }],
            }],
            comm_bytes: [0, 120, 30, 8, 6],
            comm_messages: [0, 2, 1, 1, 1],
            shared_bytes: 30,
            unshared_bytes: 45,
            inference_runs: 2,
            stats: InferenceStats {
                dirty_tags: 2,
                posteriors_reused: 5,
                posteriors_computed: 7,
                evidence_reused: 11,
                evidence_computed: 13,
            },
            inbox_seqs: vec![
                EdgeSeqs {
                    peer: 0,
                    watermark: 4,
                    extras: vec![6, 9],
                },
                EdgeSeqs {
                    peer: 1,
                    watermark: 17,
                    extras: Vec::new(),
                },
            ],
            transport: TransportStats {
                envelopes: 12,
                transmissions: 15,
                retransmissions: 3,
                acks: 14,
                duplicates_dropped: 2,
                reconciled: 1,
                stale_dropped: 0,
                abandoned: 1,
                resyncs: 1,
                quarantined: 1,
            },
            quarantine: vec![QuarantineEntry {
                from: 1,
                seq: 9,
                physical: Epoch(3),
            }],
            memory: rfid_core::MemoryStats {
                high_water: 40,
                compactions: 2,
                compacted_observations: 17,
                evicted_cache_entries: 3,
            },
            ledgers: vec![
                EdgeLedger {
                    from: 1,
                    to: 2,
                    envelopes: 12,
                    abandoned: 1,
                    sent_copies: 13,
                    sent_bytes: 260,
                    recv_copies: 13,
                    recv_bytes: 260,
                    accepted: 11,
                    imported: 9,
                    stale: 1,
                    quarantined: 1,
                    undelivered: 1,
                    undelivered_bytes: 20,
                    dark_envelopes: 1,
                },
                EdgeLedger::new(2, 0),
            ],
        }
    }

    #[test]
    fn checkpoints_round_trip_in_both_formats() {
        let checkpoint = sample();
        for codec in codecs() {
            let bytes = codec.encode_checkpoint(&checkpoint);
            assert_eq!(codec.decode_checkpoint(&bytes).unwrap(), checkpoint);
        }
    }

    #[test]
    fn binary_checkpoints_beat_json() {
        let checkpoint = sample();
        let binary = WireCodec::new(WireFormat::Binary)
            .encode_checkpoint(&checkpoint)
            .len();
        let json = WireCodec::new(WireFormat::Json)
            .encode_checkpoint(&checkpoint)
            .len();
        assert!(
            binary * 2 < json,
            "binary ({binary} B) should at least halve JSON ({json} B)"
        );
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let empty = SiteCheckpoint {
            site: 0,
            at: Epoch(0),
            engine: EngineSnapshot {
                store: Observations::new(),
                prior: PriorWeights::empty(),
                containment: ContainmentMap::new(),
                detected: Vec::new(),
                last_outcome: None,
                last_inference_at: None,
                threshold: None,
                dirty: DirtySet::new(),
                cache: EvidenceCache::new(),
            },
            processor: ProcessorSnapshot {
                temperatures: Vec::new(),
                automata: Vec::new(),
                alerts: Vec::new(),
            },
            reading_cursor: 0,
            sensor_cursor: 0,
            departure_cursor: 0,
            inbox: Vec::new(),
            comm_bytes: [0; 5],
            comm_messages: [0; 5],
            shared_bytes: 0,
            unshared_bytes: 0,
            inference_runs: 0,
            stats: InferenceStats::default(),
            inbox_seqs: Vec::new(),
            transport: TransportStats::default(),
            quarantine: Vec::new(),
            memory: rfid_core::MemoryStats::default(),
            ledgers: Vec::new(),
        };
        for codec in codecs() {
            let bytes = codec.encode_checkpoint(&empty);
            assert_eq!(codec.decode_checkpoint(&bytes).unwrap(), empty);
        }
    }

    #[test]
    fn smaller_comm_arities_decode_zero_filled() {
        // A checkpoint written by a codec that knew only 4 message kinds and
        // no transport counters: the arity prefixes make it decode cleanly,
        // with the missing slots zero-filled.
        let mut w = header(KIND_CHECKPOINT);
        w.put_varint(0); // site
        w.put_varint(0); // at
        TagTable::from_tags([]).encode(&mut w);
        for _ in 0..3 {
            w.put_varint(0); // store tags, prior objects, containment count
        }
        w.put_varint(0); // detected changes
        w.put_u8(0); // no outcome
        w.put_u8(0); // no inference epoch
        w.put_u8(0); // no threshold
        w.put_varint(0); // dirty tags
        w.put_varint(0); // cache containers
        for _ in 0..3 {
            w.put_varint(0); // temperatures, automata, alerts
        }
        for _ in 0..3 {
            w.put_varint(0); // cursors
        }
        w.put_varint(0); // inbox
        w.put_varint(4); // four comm kinds only
        for i in 0..4u64 {
            w.put_varint(i + 1); // comm bytes
        }
        for _ in 0..4 {
            w.put_varint(1); // comm messages
        }
        for _ in 0..3 {
            w.put_varint(0); // shared, unshared, runs
        }
        for _ in 0..5 {
            w.put_varint(0); // inference stats
        }
        w.put_varint(0); // no edge seqs
        w.put_varint(0); // zero transport counters
        w.put_varint(0); // no quarantine entries
        w.put_varint(0); // zero memory counters
        w.put_varint(0); // no edge ledgers
        let decoded = WireCodec::new(WireFormat::Binary)
            .decode_checkpoint(&w.into_bytes())
            .unwrap();
        assert_eq!(decoded.comm_bytes, [1, 2, 3, 4, 0]);
        assert_eq!(decoded.comm_messages, [1, 1, 1, 1, 0]);
        assert_eq!(decoded.transport, TransportStats::default());
        assert!(decoded.inbox_seqs.is_empty());
        assert!(decoded.quarantine.is_empty());
        assert_eq!(decoded.memory, rfid_core::MemoryStats::default());
        assert!(decoded.ledgers.is_empty());
    }

    #[test]
    fn missing_trailing_sections_are_rejected() {
        // Every section must be present (the arity prefixes version the
        // counters *inside* a section, not the section's existence): a
        // checkpoint cut off before the chaos sections is truncated, not a
        // silently-defaulted decode.
        let binary = WireCodec::new(WireFormat::Binary);
        let mut checkpoint = sample();
        checkpoint.quarantine.clear();
        checkpoint.memory = rfid_core::MemoryStats::default();
        checkpoint.ledgers.clear();
        let bytes = binary.encode_checkpoint(&checkpoint);
        // The empty trailing sections are quarantine count 0, memory arity 4
        // + four zeros, ledger count 0 = 7 varint bytes.
        for cut in 1..=7 {
            let mut old = bytes.clone();
            old.truncate(old.len() - cut);
            assert!(
                binary.decode_checkpoint(&old).is_err(),
                "cutting {cut} trailing bytes must not decode"
            );
        }
    }

    #[test]
    fn oversized_arities_are_rejected() {
        let binary = WireCodec::new(WireFormat::Binary);
        let sample = sample();
        let bytes = binary.encode_checkpoint(&sample);
        // Corrupting the comm arity to an unknown larger value must produce
        // a clean error, never a misaligned decode.
        let arity_pos = bytes
            .windows(6)
            .position(|w| w == [5, 0, 120, 30, 8, 6])
            .expect("comm arity prefix present");
        let mut corrupted = bytes.clone();
        corrupted[arity_pos] = 6;
        assert!(binary.decode_checkpoint(&corrupted).is_err());
    }

    #[test]
    fn corrupted_checkpoints_are_rejected() {
        let binary = WireCodec::new(WireFormat::Binary);
        let bytes = binary.encode_checkpoint(&sample());
        assert!(binary.decode_readings(&bytes).is_err(), "kind mismatch");
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(binary.decode_checkpoint(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(binary.decode_checkpoint(&trailing).is_err());
        assert!(binary.decode_checkpoint(&[]).is_err());
        let mut truncated = bytes;
        truncated.truncate(truncated.len() - 1);
        assert!(binary.decode_checkpoint(&truncated).is_err());
    }
}
