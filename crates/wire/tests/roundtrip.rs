//! Property tests: `decode(encode(x)) == x` for every payload type, in both
//! wire formats, over arbitrary inputs — including empty payloads,
//! single-entry payloads, and epochs at the `u32` wraparound boundary.

use proptest::prelude::*;
use rfid_core::{
    CachedVariant, CollapsedState, DetectedChange, DirtySet, EngineSnapshot, EvidenceCache,
    InferenceOutcome, InferenceStats, MigrationState, ObjectEvidence, Observations, PriorWeights,
    ReadingsState,
};
use rfid_query::{
    Alert, AutomatonState, ObjectQueryState, ProcessorSnapshot, SharedStateBundle, StateDelta,
};
use rfid_types::{ContainmentMap, Epoch, LocationId, RawReading, ReaderId, SensorReading, TagId};
use rfid_wire::{
    ControlMsg, EdgeSeqs, PendingShipment, SiteCheckpoint, TransportStats, WireCodec, WireFormat,
};
use std::collections::BTreeMap;

fn both() -> [WireCodec; 2] {
    [
        WireCodec::new(WireFormat::Binary),
        WireCodec::new(WireFormat::Json),
    ]
}

/// Any tag id: all three kinds, serials spanning the full 62-bit range.
fn arb_tag() -> impl Strategy<Value = TagId> {
    (0u64..3, prop_oneof![0u64..200, Just((1u64 << 62) - 1)]).prop_map(
        |(kind, serial)| match kind {
            0 => TagId::item(serial),
            1 => TagId::case(serial),
            _ => TagId::pallet(serial),
        },
    )
}

/// Any epoch, biased toward small values but covering the u32 wraparound
/// boundary (`u32::MAX`), where delta encoding is most easily broken.
fn arb_epoch() -> impl Strategy<Value = Epoch> {
    prop_oneof![
        (0u32..5000).prop_map(Epoch),
        (u32::MAX - 10..u32::MAX).prop_map(Epoch),
        Just(Epoch(u32::MAX)),
        Just(Epoch(0)),
    ]
}

/// Finite weights with exactly representable and irrational-looking values.
fn arb_weight() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6, Just(0.0f64), Just(-0.0f64), Just(-1e-300f64),]
}

fn arb_reading() -> impl Strategy<Value = RawReading> {
    (arb_epoch(), arb_tag(), 0u16..u16::MAX)
        .prop_map(|(time, tag, reader)| RawReading::new(time, tag, ReaderId(reader)))
}

fn arb_readings() -> impl Strategy<Value = Vec<RawReading>> {
    // Unsorted on purpose: the codec must preserve arbitrary order bitwise.
    prop::collection::vec(arb_reading(), 0..60)
}

fn arb_collapsed() -> impl Strategy<Value = CollapsedState> {
    (
        arb_tag(),
        prop::collection::btree_map(arb_tag(), arb_weight(), 0..12),
        prop::option::of(arb_tag()),
    )
        .prop_map(|(object, weights, container)| CollapsedState {
            object,
            weights,
            container,
        })
}

fn arb_automaton() -> impl Strategy<Value = AutomatonState> {
    prop_oneof![
        Just(AutomatonState::Idle),
        (
            arb_epoch(),
            prop::collection::vec((arb_epoch(), arb_weight()), 0..25),
            any::<bool>(),
        )
            .prop_map(|(since, readings, fired)| AutomatonState::Accumulating {
                since,
                readings,
                fired,
            }),
    ]
}

fn arb_query_state() -> impl Strategy<Value = ObjectQueryState> {
    ((0u32..4), arb_tag(), arb_automaton()).prop_map(|(q, tag, automaton)| ObjectQueryState {
        query: format!("Q{q}"),
        tag,
        automaton,
    })
}

fn arb_delta() -> impl Strategy<Value = StateDelta> {
    (
        arb_tag(),
        prop::collection::vec(((0u32..4096), any::<u8>()), 0..12),
        prop::collection::vec(any::<u8>(), 0..16),
        0u32..8192,
        prop::option::of(prop::collection::vec(any::<u8>(), 0..32)),
    )
        .prop_map(|(tag, mut edits, suffix, len, full)| {
            // Real deltas carry strictly ascending edit positions; mimic that
            // (the codec tolerates any order, equality does not tolerate
            // duplicates collapsing).
            edits.sort_by_key(|&(pos, _)| pos);
            edits.dedup_by_key(|&mut (pos, _)| pos);
            let (edits, suffix) = if full.is_some() {
                (Vec::new(), Vec::new())
            } else {
                (edits, suffix)
            };
            StateDelta {
                tag,
                edits,
                suffix,
                len,
                full,
            }
        })
}

fn arb_bundle() -> impl Strategy<Value = SharedStateBundle> {
    (
        arb_tag(),
        prop::collection::vec(any::<u8>(), 0..48),
        prop::collection::vec(arb_delta(), 0..8),
    )
        .prop_map(|(centroid_tag, centroid_bytes, deltas)| SharedStateBundle {
            centroid_tag,
            centroid_bytes,
            deltas,
        })
}

/// Bit-exact equality for collapsed weights: `PartialEq` on `f64` already
/// distinguishes everything we generate except the -0.0/0.0 pair, which the
/// codec must also preserve.
fn collapsed_bits_equal(a: &CollapsedState, b: &CollapsedState) -> bool {
    a.object == b.object
        && a.container == b.container
        && a.weights.len() == b.weights.len()
        && a.weights
            .iter()
            .zip(&b.weights)
            .all(|((ta, wa), (tb, wb))| ta == tb && wa.to_bits() == wb.to_bits())
}

proptest! {
    #[test]
    fn readings_round_trip(readings in arb_readings()) {
        for codec in both() {
            let bytes = codec.encode_readings(&readings);
            prop_assert_eq!(codec.decode_readings(&bytes).unwrap(), readings.clone());
        }
    }

    #[test]
    fn collapsed_round_trips_bitwise(state in arb_collapsed()) {
        for codec in both() {
            let bytes = codec.encode_collapsed(&state);
            let back = codec.decode_collapsed(&bytes).unwrap();
            prop_assert!(collapsed_bits_equal(&back, &state));
        }
    }

    #[test]
    fn migration_state_round_trips(state in arb_migration()) {
        for codec in both() {
            let bytes = codec.encode_migration(&state);
            prop_assert_eq!(codec.decode_migration(&bytes).unwrap(), state.clone());
        }
    }

    #[test]
    fn query_state_round_trips(state in arb_query_state()) {
        for codec in both() {
            let bytes = codec.encode_query_state(&state);
            prop_assert_eq!(codec.decode_query_state(&bytes).unwrap(), state.clone());
            let payload = codec.state_payload(&state);
            prop_assert_eq!(codec.state_from_payload(state.tag, &payload).unwrap(), state.clone());
        }
    }

    #[test]
    fn bundle_round_trips(bundle in arb_bundle()) {
        for codec in both() {
            let bytes = codec.encode_bundle(&bundle);
            prop_assert_eq!(codec.decode_bundle(&bytes).unwrap(), bundle.clone());
        }
    }

    #[test]
    fn binary_never_loses_to_json_on_reading_batches(readings in arb_readings()) {
        // Sorted batches are the wire case; binary must win whenever there is
        // at least one reading (empty batches are a few header bytes).
        let mut sorted = readings.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if !sorted.is_empty() {
            let binary = WireCodec::new(WireFormat::Binary).encode_readings(&sorted);
            let json = WireCodec::new(WireFormat::Json).encode_readings(&sorted);
            prop_assert!(binary.len() < json.len());
        }
    }

    #[test]
    fn sharing_composes_with_binary_payloads(states in prop::collection::vec(arb_query_state(), 1..10)) {
        // Centroid-based sharing over binary payloads must reconstruct every
        // state exactly, whichever payload codec built the bundle. One state
        // per (tag, query) key, as the processor exports them.
        let mut states = states;
        states.sort_by(|a, b| (a.tag, &a.query).cmp(&(b.tag, &b.query)));
        states.dedup_by(|a, b| (a.tag, &a.query) == (b.tag, &b.query));
        for codec in both() {
            let bundle = rfid_query::share_states_with(&states, |s| codec.state_payload(s)).unwrap();
            let encoded = codec.encode_bundle(&bundle);
            let decoded = codec.decode_bundle(&encoded).unwrap();
            let expanded = decoded
                .expand_states_with(|tag, payload| codec.state_from_payload(tag, payload))
                .unwrap();
            prop_assert_eq!(expanded.len(), states.len());
            for original in &states {
                let recovered = expanded.iter().find(|s| s.tag == original.tag && s.query == original.query).unwrap();
                prop_assert_eq!(recovered, original);
            }
        }
    }
}

/// An `(epoch, value)` series in arbitrary order — the codec must preserve
/// order and duplicates bitwise.
fn arb_series() -> impl Strategy<Value = Vec<(Epoch, f64)>> {
    prop::collection::vec((arb_epoch(), arb_weight()), 0..6)
}

fn arb_observations() -> impl Strategy<Value = Observations> {
    prop::collection::vec(arb_reading(), 0..25).prop_map(|readings| {
        let mut store = Observations::new();
        for reading in readings {
            store.insert(reading);
        }
        store
    })
}

fn arb_prior() -> impl Strategy<Value = PriorWeights> {
    prop::collection::vec((arb_tag(), arb_tag(), arb_weight()), 0..8).prop_map(|entries| {
        let mut prior = PriorWeights::empty();
        for (object, container, weight) in entries {
            prior.set(object, container, weight);
        }
        prior
    })
}

fn arb_containment() -> impl Strategy<Value = ContainmentMap> {
    prop::collection::btree_map(arb_tag(), arb_tag(), 0..8).prop_map(|pairs| {
        let mut map = ContainmentMap::new();
        for (object, container) in pairs {
            map.set(object, container);
        }
        map
    })
}

fn arb_dirty() -> impl Strategy<Value = DirtySet> {
    (
        prop::collection::vec(arb_tag(), 0..4),
        prop::collection::vec((arb_tag(), arb_epoch()), 0..10),
    )
        .prop_map(|(marks, records)| {
            let mut dirty = DirtySet::new();
            for tag in marks {
                dirty.mark(tag);
            }
            for (tag, epoch) in records {
                dirty.record(tag, epoch);
            }
            dirty
        })
}

fn arb_cache() -> impl Strategy<Value = EvidenceCache> {
    let variant = (
        prop::collection::vec(arb_tag(), 0..4),
        prop::collection::vec(arb_epoch(), 0..5),
        prop::collection::vec(arb_weight(), 0..8),
        prop::collection::btree_map(arb_tag(), arb_series(), 0..3),
    )
        .prop_map(|(members, epochs, qrows, evidence)| CachedVariant {
            members,
            epochs,
            qrows,
            evidence,
        });
    prop::collection::btree_map(arb_tag(), prop::collection::vec(variant, 0..3), 0..3).prop_map(
        |containers| {
            let mut cache = EvidenceCache::new();
            for (container, variants) in containers {
                cache.set_variants(container, variants);
            }
            cache
        },
    )
}

fn arb_outcome() -> impl Strategy<Value = InferenceOutcome> {
    let evidence = (
        prop::collection::vec(arb_tag(), 0..5),
        prop::collection::btree_map(arb_tag(), arb_weight(), 0..5),
        prop::collection::btree_map(arb_tag(), arb_series(), 0..3),
        prop::option::of(arb_tag()),
    )
        .prop_map(
            |(candidates, weights, point_evidence, assigned)| ObjectEvidence {
                candidates,
                weights,
                point_evidence,
                assigned,
            },
        );
    (
        arb_containment(),
        prop::collection::btree_map(arb_tag(), evidence, 0..4),
        prop::collection::btree_map(
            arb_tag(),
            prop::collection::vec((arb_epoch(), (0u16..300).prop_map(LocationId)), 0..5),
            0..4,
        ),
        0usize..20,
        0usize..64,
    )
        .prop_map(
            |(containment, objects, tag_locations, iterations, num_locations)| InferenceOutcome {
                containment,
                objects,
                tag_locations,
                iterations,
                num_locations,
            },
        )
}

fn arb_engine() -> impl Strategy<Value = EngineSnapshot> {
    let detected = (
        arb_tag(),
        arb_epoch(),
        prop::option::of(arb_tag()),
        prop::option::of(arb_tag()),
        arb_weight(),
    )
        .prop_map(
            |(object, change_at, old_container, new_container, statistic)| DetectedChange {
                object,
                change_at,
                old_container,
                new_container,
                statistic,
            },
        );
    (
        arb_observations(),
        arb_prior(),
        arb_containment(),
        prop::collection::vec(detected, 0..3),
        prop::option::of(arb_outcome()),
        prop::option::of(arb_epoch()),
        prop::option::of(arb_weight()),
        arb_dirty(),
        arb_cache(),
    )
        .prop_map(
            |(
                store,
                prior,
                containment,
                detected,
                last_outcome,
                last_inference_at,
                threshold,
                dirty,
                cache,
            )| {
                EngineSnapshot {
                    store,
                    prior,
                    containment,
                    detected,
                    last_outcome,
                    last_inference_at,
                    threshold,
                    dirty,
                    cache,
                }
            },
        )
}

fn arb_processor() -> impl Strategy<Value = ProcessorSnapshot> {
    let alert = ((0u32..4), arb_tag(), arb_epoch(), arb_epoch(), arb_series()).prop_map(
        |(q, tag, since, at, readings)| Alert {
            query: format!("Q{q}"),
            tag,
            since,
            at,
            readings,
        },
    );
    (
        prop::collection::vec(
            (arb_epoch(), 0u16..300, arb_weight())
                .prop_map(|(time, loc, value)| SensorReading::new(time, LocationId(loc), value)),
            0..5,
        ),
        prop::collection::vec(arb_query_state(), 0..5),
        prop::collection::vec(alert, 0..4),
    )
        .prop_map(|(temperatures, automata, alerts)| ProcessorSnapshot {
            temperatures,
            automata,
            alerts,
        })
}

fn arb_pending() -> impl Strategy<Value = PendingShipment> {
    (
        arb_epoch(),
        0u16..16,
        0u16..16,
        arb_tag(),
        arb_epoch(),
        (any::<u64>(), arb_epoch()),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..24)),
        prop::collection::vec(arb_query_state(), 0..3),
    )
        .prop_map(
            |(depart, from, to, tag, arrive, (seq, physical), inference, query)| PendingShipment {
                depart,
                from,
                to,
                tag,
                arrive,
                seq,
                physical,
                inference,
                query,
            },
        )
}

fn arb_edge_seqs() -> impl Strategy<Value = Vec<EdgeSeqs>> {
    prop::collection::vec(
        (
            0u16..64,
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..5),
        )
            .prop_map(|(peer, watermark, extras)| EdgeSeqs {
                peer,
                watermark,
                extras,
            }),
        0..4,
    )
}

fn arb_transport_stats() -> impl Strategy<Value = TransportStats> {
    prop::collection::vec(0u64..1 << 40, 10).prop_map(|v| TransportStats {
        envelopes: v[0],
        transmissions: v[1],
        retransmissions: v[2],
        acks: v[3],
        duplicates_dropped: v[4],
        reconciled: v[5],
        stale_dropped: v[6],
        abandoned: v[7],
        resyncs: v[8],
        quarantined: v[9],
    })
}

fn arb_quarantine() -> impl Strategy<Value = Vec<rfid_wire::QuarantineEntry>> {
    prop::collection::vec(
        (0u16..64, any::<u64>(), arb_epoch()).prop_map(|(from, seq, physical)| {
            rfid_wire::QuarantineEntry {
                from,
                seq,
                physical,
            }
        }),
        0..4,
    )
}

fn arb_memory() -> impl Strategy<Value = rfid_core::MemoryStats> {
    prop::collection::vec(0u64..1 << 40, 4).prop_map(|v| rfid_core::MemoryStats {
        high_water: v[0],
        compactions: v[1],
        compacted_observations: v[2],
        evicted_cache_entries: v[3],
    })
}

fn arb_ledgers() -> impl Strategy<Value = Vec<rfid_wire::EdgeLedger>> {
    prop::collection::vec(
        (
            (0u16..64, 0u16..64),
            prop::collection::vec(0u64..1 << 40, 13),
        )
            .prop_map(|((from, to), v)| rfid_wire::EdgeLedger {
                from,
                to,
                envelopes: v[0],
                abandoned: v[1],
                sent_copies: v[2],
                sent_bytes: v[3],
                recv_copies: v[4],
                recv_bytes: v[5],
                accepted: v[6],
                imported: v[7],
                stale: v[8],
                quarantined: v[9],
                undelivered: v[10],
                undelivered_bytes: v[11],
                dark_envelopes: v[12],
            }),
        0..4,
    )
}

fn arb_checkpoint() -> impl Strategy<Value = SiteCheckpoint> {
    let accounting = (
        prop::collection::vec(0u64..1 << 40, 5),
        prop::collection::vec(0u64..1 << 20, 5),
        0u64..1 << 40,
        0u64..1 << 40,
        0u64..10_000,
        prop::collection::vec(0usize..100_000, 5),
    );
    (
        (0u16..64, arb_epoch(), arb_engine(), arb_processor()),
        (0u64..1 << 32, 0u64..1 << 32, 0u64..1 << 32),
        prop::collection::vec(arb_pending(), 0..4),
        accounting,
        (
            arb_edge_seqs(),
            arb_transport_stats(),
            arb_quarantine(),
            arb_memory(),
            arb_ledgers(),
        ),
    )
        .prop_map(
            |(
                (site, at, engine, processor),
                (reading_cursor, sensor_cursor, departure_cursor),
                inbox,
                (bytes, messages, shared_bytes, unshared_bytes, inference_runs, stats),
                (inbox_seqs, transport, quarantine, memory, ledgers),
            )| SiteCheckpoint {
                site,
                at,
                engine,
                processor,
                reading_cursor,
                sensor_cursor,
                departure_cursor,
                inbox,
                comm_bytes: [bytes[0], bytes[1], bytes[2], bytes[3], bytes[4]],
                comm_messages: [
                    messages[0],
                    messages[1],
                    messages[2],
                    messages[3],
                    messages[4],
                ],
                shared_bytes,
                unshared_bytes,
                inference_runs,
                stats: InferenceStats {
                    dirty_tags: stats[0],
                    posteriors_reused: stats[1],
                    posteriors_computed: stats[2],
                    evidence_reused: stats[3],
                    evidence_computed: stats[4],
                },
                inbox_seqs,
                transport,
                quarantine,
                memory,
                ledgers,
            },
        )
}

fn arb_control() -> impl Strategy<Value = ControlMsg> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u64>()).prop_map(|(from, to, seq)| ControlMsg::Ack {
            from,
            to,
            seq
        }),
        (any::<u16>(), any::<u16>(), arb_epoch())
            .prop_map(|(site, peer, since)| ControlMsg::Resync { site, peer, since }),
    ]
}

proptest! {
    #[test]
    fn control_messages_round_trip(msg in arb_control()) {
        for codec in both() {
            let bytes = codec.encode_control(&msg);
            prop_assert_eq!(codec.decode_control(&bytes).unwrap(), msg);
            // Byte-stable: decode then re-encode reproduces the wire bytes.
            prop_assert_eq!(codec.encode_control(&codec.decode_control(&bytes).unwrap()), bytes);
        }
    }
}

proptest! {
    #[test]
    fn checkpoints_round_trip_bitwise(checkpoint in arb_checkpoint()) {
        for codec in both() {
            let bytes = codec.encode_checkpoint(&checkpoint);
            let back = codec.decode_checkpoint(&bytes).unwrap();
            prop_assert_eq!(&back, &checkpoint);
            // Bit-exactness beyond `PartialEq` (which conflates 0.0 and
            // -0.0): re-encoding the decoded checkpoint must reproduce the
            // original bytes, so every f64 bit pattern survived.
            prop_assert_eq!(codec.encode_checkpoint(&back), bytes);
        }
    }
}

#[test]
fn checkpoint_epochs_survive_the_wraparound_boundary() {
    // Epoch u32::MAX everywhere a delta chain starts or ends: observation
    // epochs, the checkpoint cut, dirty records and a pending shipment.
    let mut store = Observations::new();
    store.insert(RawReading::new(
        Epoch(u32::MAX),
        TagId::item(1),
        ReaderId(0),
    ));
    store.insert(RawReading::new(Epoch(0), TagId::item(1), ReaderId(1)));
    let mut dirty = DirtySet::new();
    dirty.record(TagId::item(1), Epoch(u32::MAX));
    dirty.record(TagId::item(1), Epoch(0));
    let checkpoint = SiteCheckpoint {
        site: u16::MAX,
        at: Epoch(u32::MAX),
        engine: EngineSnapshot {
            store,
            prior: PriorWeights::empty(),
            containment: ContainmentMap::new(),
            detected: Vec::new(),
            last_outcome: None,
            last_inference_at: Some(Epoch(u32::MAX)),
            threshold: None,
            dirty,
            cache: EvidenceCache::new(),
        },
        processor: ProcessorSnapshot {
            temperatures: Vec::new(),
            automata: Vec::new(),
            alerts: Vec::new(),
        },
        reading_cursor: u64::from(u32::MAX),
        sensor_cursor: 0,
        departure_cursor: 0,
        inbox: vec![PendingShipment {
            depart: Epoch(u32::MAX),
            from: 0,
            to: 1,
            tag: TagId::item(1),
            arrive: Epoch(u32::MAX),
            seq: u64::MAX,
            physical: Epoch(u32::MAX),
            inference: None,
            query: Vec::new(),
        }],
        comm_bytes: [u64::from(u32::MAX); 5],
        comm_messages: [0; 5],
        shared_bytes: 0,
        unshared_bytes: 0,
        inference_runs: 0,
        stats: InferenceStats::default(),
        inbox_seqs: vec![EdgeSeqs {
            peer: u16::MAX,
            watermark: u64::MAX,
            extras: Vec::new(),
        }],
        transport: TransportStats::default(),
        quarantine: vec![rfid_wire::QuarantineEntry {
            from: u16::MAX,
            seq: u64::MAX,
            physical: Epoch(u32::MAX),
        }],
        memory: rfid_core::MemoryStats {
            high_water: u64::MAX,
            compactions: 0,
            compacted_observations: 0,
            evicted_cache_entries: 0,
        },
        ledgers: vec![rfid_wire::EdgeLedger::new(u16::MAX, 0)],
    };
    for codec in both() {
        let bytes = codec.encode_checkpoint(&checkpoint);
        assert_eq!(codec.decode_checkpoint(&bytes).unwrap(), checkpoint);
    }
}

/// Arbitrary migration state across all three variants.
fn arb_migration() -> impl Strategy<Value = MigrationState> {
    prop_oneof![
        Just(MigrationState::None),
        arb_collapsed().prop_map(MigrationState::Collapsed),
        (arb_tag(), arb_readings(), prop::option::of(arb_tag())).prop_map(
            |(object, readings, container)| {
                MigrationState::Readings(ReadingsState {
                    object,
                    readings,
                    container,
                })
            }
        ),
    ]
}

#[test]
fn single_entry_and_empty_edge_cases() {
    for codec in both() {
        // Single reading at the epoch wraparound boundary.
        let one = vec![RawReading::new(
            Epoch(u32::MAX),
            TagId::item(1),
            ReaderId(0),
        )];
        assert_eq!(
            codec.decode_readings(&codec.encode_readings(&one)).unwrap(),
            one
        );
        // Empty batch.
        assert_eq!(
            codec.decode_readings(&codec.encode_readings(&[])).unwrap(),
            vec![]
        );
        // Collapsed state with a single candidate and no container.
        let single = CollapsedState {
            object: TagId::item(1),
            weights: BTreeMap::from([(TagId::case(1), -1.0)]),
            container: None,
        };
        assert_eq!(
            codec
                .decode_collapsed(&codec.encode_collapsed(&single))
                .unwrap(),
            single
        );
        // MigrationState::None is a couple of bytes, not a payload.
        let none = codec.encode_migration(&MigrationState::None);
        assert!(none.len() <= 8);
        assert_eq!(codec.decode_migration(&none).unwrap(), MigrationState::None);
    }
}

#[test]
fn epoch_wraparound_deltas_survive_unsorted_sequences() {
    // Maximal negative and positive deltas back to back.
    let readings = vec![
        RawReading::new(Epoch(u32::MAX), TagId::item(1), ReaderId(0)),
        RawReading::new(Epoch(0), TagId::item(1), ReaderId(1)),
        RawReading::new(Epoch(u32::MAX), TagId::case(1), ReaderId(u16::MAX)),
    ];
    for codec in both() {
        let bytes = codec.encode_readings(&readings);
        assert_eq!(codec.decode_readings(&bytes).unwrap(), readings);
    }
}
