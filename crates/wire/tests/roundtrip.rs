//! Property tests: `decode(encode(x)) == x` for every payload type, in both
//! wire formats, over arbitrary inputs — including empty payloads,
//! single-entry payloads, and epochs at the `u32` wraparound boundary.

use proptest::prelude::*;
use rfid_core::{CollapsedState, MigrationState, ReadingsState};
use rfid_query::{AutomatonState, ObjectQueryState, SharedStateBundle, StateDelta};
use rfid_types::{Epoch, RawReading, ReaderId, TagId};
use rfid_wire::{WireCodec, WireFormat};
use std::collections::BTreeMap;

fn both() -> [WireCodec; 2] {
    [
        WireCodec::new(WireFormat::Binary),
        WireCodec::new(WireFormat::Json),
    ]
}

/// Any tag id: all three kinds, serials spanning the full 62-bit range.
fn arb_tag() -> impl Strategy<Value = TagId> {
    (0u64..3, prop_oneof![0u64..200, Just((1u64 << 62) - 1)]).prop_map(
        |(kind, serial)| match kind {
            0 => TagId::item(serial),
            1 => TagId::case(serial),
            _ => TagId::pallet(serial),
        },
    )
}

/// Any epoch, biased toward small values but covering the u32 wraparound
/// boundary (`u32::MAX`), where delta encoding is most easily broken.
fn arb_epoch() -> impl Strategy<Value = Epoch> {
    prop_oneof![
        (0u32..5000).prop_map(Epoch),
        (u32::MAX - 10..u32::MAX).prop_map(Epoch),
        Just(Epoch(u32::MAX)),
        Just(Epoch(0)),
    ]
}

/// Finite weights with exactly representable and irrational-looking values.
fn arb_weight() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6, Just(0.0f64), Just(-0.0f64), Just(-1e-300f64),]
}

fn arb_reading() -> impl Strategy<Value = RawReading> {
    (arb_epoch(), arb_tag(), 0u16..u16::MAX)
        .prop_map(|(time, tag, reader)| RawReading::new(time, tag, ReaderId(reader)))
}

fn arb_readings() -> impl Strategy<Value = Vec<RawReading>> {
    // Unsorted on purpose: the codec must preserve arbitrary order bitwise.
    prop::collection::vec(arb_reading(), 0..60)
}

fn arb_collapsed() -> impl Strategy<Value = CollapsedState> {
    (
        arb_tag(),
        prop::collection::btree_map(arb_tag(), arb_weight(), 0..12),
        prop::option::of(arb_tag()),
    )
        .prop_map(|(object, weights, container)| CollapsedState {
            object,
            weights,
            container,
        })
}

fn arb_automaton() -> impl Strategy<Value = AutomatonState> {
    prop_oneof![
        Just(AutomatonState::Idle),
        (
            arb_epoch(),
            prop::collection::vec((arb_epoch(), arb_weight()), 0..25),
            any::<bool>(),
        )
            .prop_map(|(since, readings, fired)| AutomatonState::Accumulating {
                since,
                readings,
                fired,
            }),
    ]
}

fn arb_query_state() -> impl Strategy<Value = ObjectQueryState> {
    ((0u32..4), arb_tag(), arb_automaton()).prop_map(|(q, tag, automaton)| ObjectQueryState {
        query: format!("Q{q}"),
        tag,
        automaton,
    })
}

fn arb_delta() -> impl Strategy<Value = StateDelta> {
    (
        arb_tag(),
        prop::collection::vec(((0u32..4096), any::<u8>()), 0..12),
        prop::collection::vec(any::<u8>(), 0..16),
        0u32..8192,
        prop::option::of(prop::collection::vec(any::<u8>(), 0..32)),
    )
        .prop_map(|(tag, mut edits, suffix, len, full)| {
            // Real deltas carry strictly ascending edit positions; mimic that
            // (the codec tolerates any order, equality does not tolerate
            // duplicates collapsing).
            edits.sort_by_key(|&(pos, _)| pos);
            edits.dedup_by_key(|&mut (pos, _)| pos);
            let (edits, suffix) = if full.is_some() {
                (Vec::new(), Vec::new())
            } else {
                (edits, suffix)
            };
            StateDelta {
                tag,
                edits,
                suffix,
                len,
                full,
            }
        })
}

fn arb_bundle() -> impl Strategy<Value = SharedStateBundle> {
    (
        arb_tag(),
        prop::collection::vec(any::<u8>(), 0..48),
        prop::collection::vec(arb_delta(), 0..8),
    )
        .prop_map(|(centroid_tag, centroid_bytes, deltas)| SharedStateBundle {
            centroid_tag,
            centroid_bytes,
            deltas,
        })
}

/// Bit-exact equality for collapsed weights: `PartialEq` on `f64` already
/// distinguishes everything we generate except the -0.0/0.0 pair, which the
/// codec must also preserve.
fn collapsed_bits_equal(a: &CollapsedState, b: &CollapsedState) -> bool {
    a.object == b.object
        && a.container == b.container
        && a.weights.len() == b.weights.len()
        && a.weights
            .iter()
            .zip(&b.weights)
            .all(|((ta, wa), (tb, wb))| ta == tb && wa.to_bits() == wb.to_bits())
}

proptest! {
    #[test]
    fn readings_round_trip(readings in arb_readings()) {
        for codec in both() {
            let bytes = codec.encode_readings(&readings);
            prop_assert_eq!(codec.decode_readings(&bytes).unwrap(), readings.clone());
        }
    }

    #[test]
    fn collapsed_round_trips_bitwise(state in arb_collapsed()) {
        for codec in both() {
            let bytes = codec.encode_collapsed(&state);
            let back = codec.decode_collapsed(&bytes).unwrap();
            prop_assert!(collapsed_bits_equal(&back, &state));
        }
    }

    #[test]
    fn migration_state_round_trips(state in arb_migration()) {
        for codec in both() {
            let bytes = codec.encode_migration(&state);
            prop_assert_eq!(codec.decode_migration(&bytes).unwrap(), state.clone());
        }
    }

    #[test]
    fn query_state_round_trips(state in arb_query_state()) {
        for codec in both() {
            let bytes = codec.encode_query_state(&state);
            prop_assert_eq!(codec.decode_query_state(&bytes).unwrap(), state.clone());
            let payload = codec.state_payload(&state);
            prop_assert_eq!(codec.state_from_payload(state.tag, &payload).unwrap(), state.clone());
        }
    }

    #[test]
    fn bundle_round_trips(bundle in arb_bundle()) {
        for codec in both() {
            let bytes = codec.encode_bundle(&bundle);
            prop_assert_eq!(codec.decode_bundle(&bytes).unwrap(), bundle.clone());
        }
    }

    #[test]
    fn binary_never_loses_to_json_on_reading_batches(readings in arb_readings()) {
        // Sorted batches are the wire case; binary must win whenever there is
        // at least one reading (empty batches are a few header bytes).
        let mut sorted = readings.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if !sorted.is_empty() {
            let binary = WireCodec::new(WireFormat::Binary).encode_readings(&sorted);
            let json = WireCodec::new(WireFormat::Json).encode_readings(&sorted);
            prop_assert!(binary.len() < json.len());
        }
    }

    #[test]
    fn sharing_composes_with_binary_payloads(states in prop::collection::vec(arb_query_state(), 1..10)) {
        // Centroid-based sharing over binary payloads must reconstruct every
        // state exactly, whichever payload codec built the bundle. One state
        // per (tag, query) key, as the processor exports them.
        let mut states = states;
        states.sort_by(|a, b| (a.tag, &a.query).cmp(&(b.tag, &b.query)));
        states.dedup_by(|a, b| (a.tag, &a.query) == (b.tag, &b.query));
        for codec in both() {
            let bundle = rfid_query::share_states_with(&states, |s| codec.state_payload(s)).unwrap();
            let encoded = codec.encode_bundle(&bundle);
            let decoded = codec.decode_bundle(&encoded).unwrap();
            let expanded = decoded
                .expand_states_with(|tag, payload| codec.state_from_payload(tag, payload))
                .unwrap();
            prop_assert_eq!(expanded.len(), states.len());
            for original in &states {
                let recovered = expanded.iter().find(|s| s.tag == original.tag && s.query == original.query).unwrap();
                prop_assert_eq!(recovered, original);
            }
        }
    }
}

/// Arbitrary migration state across all three variants.
fn arb_migration() -> impl Strategy<Value = MigrationState> {
    prop_oneof![
        Just(MigrationState::None),
        arb_collapsed().prop_map(MigrationState::Collapsed),
        (arb_tag(), arb_readings(), prop::option::of(arb_tag())).prop_map(
            |(object, readings, container)| {
                MigrationState::Readings(ReadingsState {
                    object,
                    readings,
                    container,
                })
            }
        ),
    ]
}

#[test]
fn single_entry_and_empty_edge_cases() {
    for codec in both() {
        // Single reading at the epoch wraparound boundary.
        let one = vec![RawReading::new(
            Epoch(u32::MAX),
            TagId::item(1),
            ReaderId(0),
        )];
        assert_eq!(
            codec.decode_readings(&codec.encode_readings(&one)).unwrap(),
            one
        );
        // Empty batch.
        assert_eq!(
            codec.decode_readings(&codec.encode_readings(&[])).unwrap(),
            vec![]
        );
        // Collapsed state with a single candidate and no container.
        let single = CollapsedState {
            object: TagId::item(1),
            weights: BTreeMap::from([(TagId::case(1), -1.0)]),
            container: None,
        };
        assert_eq!(
            codec
                .decode_collapsed(&codec.encode_collapsed(&single))
                .unwrap(),
            single
        );
        // MigrationState::None is a couple of bytes, not a payload.
        let none = codec.encode_migration(&MigrationState::None);
        assert!(none.len() <= 8);
        assert_eq!(codec.decode_migration(&none).unwrap(), MigrationState::None);
    }
}

#[test]
fn epoch_wraparound_deltas_survive_unsorted_sequences() {
    // Maximal negative and positive deltas back to back.
    let readings = vec![
        RawReading::new(Epoch(u32::MAX), TagId::item(1), ReaderId(0)),
        RawReading::new(Epoch(0), TagId::item(1), ReaderId(1)),
        RawReading::new(Epoch(u32::MAX), TagId::case(1), ReaderId(u16::MAX)),
    ];
    for codec in both() {
        let bytes = codec.encode_readings(&readings);
        assert_eq!(codec.decode_readings(&bytes).unwrap(), readings);
    }
}
