//! Adversarial decoding: the wire decoder must treat every byte sequence —
//! truncated, bit-flipped, or outright random — as data, never as a reason
//! to panic. Valid encodings must additionally be *stable*: decoding and
//! re-encoding reproduces the original bytes.
//!
//! This is the runtime half of the `panic-free-decode` invariant; the static
//! half is enforced by `rfid-lint` over `crates/wire/src`.

use proptest::prelude::*;
use rfid_core::{CollapsedState, MigrationState, ReadingsState};
use rfid_query::{AutomatonState, ObjectQueryState, SharedStateBundle, StateDelta};
use rfid_types::{Epoch, RawReading, ReaderId, TagId};
use rfid_wire::primitives::{Reader, TagTable, Writer};
use rfid_wire::{WireCodec, WireErrorKind, WireFormat, WIRE_VERSION};

fn binary() -> WireCodec {
    WireCodec::new(WireFormat::Binary)
}

fn both() -> [WireCodec; 2] {
    [
        WireCodec::new(WireFormat::Binary),
        WireCodec::new(WireFormat::Json),
    ]
}

/// Run every decoder over `bytes`; the only acceptable outcomes are `Ok` and
/// `Err` — a panic fails the test by unwinding.
fn decode_everything(codec: &WireCodec, bytes: &[u8]) {
    let _ = codec.decode_readings(bytes);
    let _ = codec.decode_collapsed(bytes);
    let _ = codec.decode_migration(bytes);
    let _ = codec.decode_query_state(bytes);
    let _ = codec.decode_bundle(bytes);
    let _ = codec.decode_checkpoint(bytes);
    let _ = codec.decode_control(bytes);
    let _ = codec.state_from_payload(TagId::item(1), bytes);
}

fn arb_tag() -> impl Strategy<Value = TagId> {
    (0u64..3, prop_oneof![0u64..200, Just((1u64 << 62) - 1)]).prop_map(
        |(kind, serial)| match kind {
            0 => TagId::item(serial),
            1 => TagId::case(serial),
            _ => TagId::pallet(serial),
        },
    )
}

fn arb_epoch() -> impl Strategy<Value = Epoch> {
    prop_oneof![
        (0u32..5000).prop_map(Epoch),
        Just(Epoch(u32::MAX)),
        Just(Epoch(0)),
    ]
}

fn arb_weight() -> impl Strategy<Value = f64> {
    prop_oneof![-1e6f64..1e6, Just(0.0f64), Just(-0.0f64), Just(-1e-300f64)]
}

fn arb_readings() -> impl Strategy<Value = Vec<RawReading>> {
    prop::collection::vec(
        (arb_epoch(), arb_tag(), 0u16..u16::MAX)
            .prop_map(|(time, tag, reader)| RawReading::new(time, tag, ReaderId(reader))),
        0..40,
    )
}

fn arb_collapsed() -> impl Strategy<Value = CollapsedState> {
    (
        arb_tag(),
        prop::collection::btree_map(arb_tag(), arb_weight(), 0..10),
        prop::option::of(arb_tag()),
    )
        .prop_map(|(object, weights, container)| CollapsedState {
            object,
            weights,
            container,
        })
}

fn arb_migration() -> impl Strategy<Value = MigrationState> {
    prop_oneof![
        Just(MigrationState::None),
        arb_collapsed().prop_map(MigrationState::Collapsed),
        (arb_tag(), arb_readings(), prop::option::of(arb_tag())).prop_map(
            |(object, readings, container)| {
                MigrationState::Readings(ReadingsState {
                    object,
                    readings,
                    container,
                })
            }
        ),
    ]
}

fn arb_query_state() -> impl Strategy<Value = ObjectQueryState> {
    (
        0u32..4,
        arb_tag(),
        prop_oneof![
            Just(AutomatonState::Idle),
            (
                arb_epoch(),
                prop::collection::vec((arb_epoch(), arb_weight()), 0..15),
                any::<bool>(),
            )
                .prop_map(|(since, readings, fired)| AutomatonState::Accumulating {
                    since,
                    readings,
                    fired,
                }),
        ],
    )
        .prop_map(|(q, tag, automaton)| ObjectQueryState {
            query: format!("Q{q}"),
            tag,
            automaton,
        })
}

fn arb_bundle() -> impl Strategy<Value = SharedStateBundle> {
    (
        arb_tag(),
        prop::collection::vec(any::<u8>(), 0..32),
        prop::collection::vec(
            (
                arb_tag(),
                prop::collection::vec((0u32..4096, any::<u8>()), 0..8),
                prop::collection::vec(any::<u8>(), 0..12),
                0u32..8192,
                prop::option::of(prop::collection::vec(any::<u8>(), 0..16)),
            )
                .prop_map(|(tag, mut edits, suffix, len, full)| {
                    edits.sort_by_key(|&(pos, _)| pos);
                    edits.dedup_by_key(|&mut (pos, _)| pos);
                    let (edits, suffix) = if full.is_some() {
                        (Vec::new(), Vec::new())
                    } else {
                        (edits, suffix)
                    };
                    StateDelta {
                        tag,
                        edits,
                        suffix,
                        len,
                        full,
                    }
                }),
            0..6,
        ),
    )
        .prop_map(|(centroid_tag, centroid_bytes, deltas)| SharedStateBundle {
            centroid_tag,
            centroid_bytes,
            deltas,
        })
}

/// A small but fully-populated checkpoint: every section non-empty, so
/// truncation and bit-flip sweeps cross section boundaries.
fn arb_checkpoint() -> impl Strategy<Value = rfid_wire::SiteCheckpoint> {
    use rfid_core::{
        CachedVariant, DirtySet, EngineSnapshot, EvidenceCache, Observations, PriorWeights,
    };
    use rfid_query::ProcessorSnapshot;
    use rfid_types::{ContainmentMap, LocationId, SensorReading};
    (
        arb_readings(),
        prop::collection::vec((arb_tag(), arb_tag(), arb_weight()), 0..6),
        prop::collection::vec((arb_tag(), arb_epoch()), 0..6),
        arb_query_state(),
        (arb_epoch(), 0u16..16, arb_tag(), arb_epoch()),
    )
        .prop_map(
            |(readings, priors, records, state, (depart, to, tag, arrive))| {
                let mut store = Observations::new();
                for reading in &readings {
                    store.insert(*reading);
                }
                let mut prior = PriorWeights::empty();
                let mut containment = ContainmentMap::new();
                for (object, container, weight) in priors {
                    prior.set(object, container, weight);
                    containment.set(object, container);
                }
                let mut dirty = DirtySet::new();
                for (dirty_tag, epoch) in records {
                    dirty.record(dirty_tag, epoch);
                }
                let mut cache = EvidenceCache::new();
                cache.set_variants(
                    tag,
                    vec![CachedVariant {
                        members: vec![tag],
                        epochs: vec![depart],
                        qrows: vec![0.5, -0.5],
                        evidence: [(tag, vec![(depart, 1.0)])].into_iter().collect(),
                    }],
                );
                rfid_wire::SiteCheckpoint {
                    site: 3,
                    at: arrive,
                    engine: EngineSnapshot {
                        store,
                        prior,
                        containment,
                        detected: Vec::new(),
                        last_outcome: None,
                        last_inference_at: Some(arrive),
                        threshold: Some(4.5),
                        dirty,
                        cache,
                    },
                    processor: ProcessorSnapshot {
                        temperatures: vec![SensorReading::new(depart, LocationId(1), 20.5)],
                        automata: vec![state.clone()],
                        alerts: Vec::new(),
                    },
                    reading_cursor: readings.len() as u64,
                    sensor_cursor: 1,
                    departure_cursor: 0,
                    inbox: vec![rfid_wire::PendingShipment {
                        depart,
                        from: 0,
                        to,
                        tag,
                        arrive,
                        seq: 9,
                        physical: arrive,
                        inference: Some(vec![7, 7, 7]),
                        query: vec![state],
                    }],
                    comm_bytes: [1, 2, 3, 4, 5],
                    comm_messages: [1, 1, 1, 1, 1],
                    shared_bytes: 10,
                    unshared_bytes: 20,
                    inference_runs: 2,
                    stats: Default::default(),
                    inbox_seqs: vec![rfid_wire::EdgeSeqs {
                        peer: to,
                        watermark: 4,
                        extras: vec![6, 9],
                    }],
                    transport: rfid_wire::TransportStats {
                        envelopes: 3,
                        transmissions: 5,
                        retransmissions: 2,
                        acks: 3,
                        duplicates_dropped: 1,
                        reconciled: 1,
                        stale_dropped: 0,
                        abandoned: 0,
                        resyncs: 1,
                        quarantined: 1,
                    },
                    quarantine: vec![rfid_wire::QuarantineEntry {
                        from: 0,
                        seq: 9,
                        physical: arrive,
                    }],
                    memory: rfid_core::MemoryStats {
                        high_water: 12,
                        compactions: 1,
                        compacted_observations: 4,
                        evicted_cache_entries: 1,
                    },
                    ledgers: vec![rfid_wire::EdgeLedger {
                        from: 0,
                        to,
                        envelopes: 3,
                        abandoned: 0,
                        sent_copies: 4,
                        sent_bytes: 64,
                        recv_copies: 4,
                        recv_bytes: 64,
                        accepted: 3,
                        imported: 2,
                        stale: 0,
                        quarantined: 1,
                        undelivered: 1,
                        undelivered_bytes: 16,
                        dark_envelopes: 0,
                    }],
                }
            },
        )
}

/// Valid binary encodings of every payload family, for mutation.
fn arb_control() -> impl Strategy<Value = rfid_wire::ControlMsg> {
    prop_oneof![
        (0u16..64, 0u16..64, any::<u64>()).prop_map(|(from, to, seq)| rfid_wire::ControlMsg::Ack {
            from,
            to,
            seq
        }),
        (0u16..64, 0u16..64, arb_epoch())
            .prop_map(|(site, peer, since)| rfid_wire::ControlMsg::Resync { site, peer, since }),
    ]
}

fn arb_encoding() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        arb_readings().prop_map(|r| binary().encode_readings(&r)),
        arb_collapsed().prop_map(|s| binary().encode_collapsed(&s)),
        arb_migration().prop_map(|s| binary().encode_migration(&s)),
        arb_query_state().prop_map(|s| binary().encode_query_state(&s)),
        arb_bundle().prop_map(|b| binary().encode_bundle(&b)),
        arb_checkpoint().prop_map(|c| binary().encode_checkpoint(&c)),
        arb_control().prop_map(|m| binary().encode_control(&m)),
    ]
}

proptest! {
    #[test]
    fn every_strict_prefix_errs_and_never_panics(bytes in arb_encoding()) {
        // Binary messages either promise more bytes (truncation mid-field)
        // or fail `expect_exhausted`; either way a strict prefix is an error,
        // and crucially never an abort.
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            prop_assert!(binary().decode_readings(prefix).is_err());
            prop_assert!(binary().decode_collapsed(prefix).is_err());
            prop_assert!(binary().decode_migration(prefix).is_err());
            prop_assert!(binary().decode_query_state(prefix).is_err());
            prop_assert!(binary().decode_bundle(prefix).is_err());
            prop_assert!(binary().decode_checkpoint(prefix).is_err());
            prop_assert!(binary().decode_control(prefix).is_err());
        }
    }

    #[test]
    fn bit_flips_never_panic(bytes in arb_encoding(), idx in any::<u16>(), bit in 0u8..8) {
        // A single flipped bit may still decode (payload bits), may change
        // the message meaning, or may corrupt structure — all fine, as long
        // as no decoder panics.
        let mut mutated = bytes;
        if !mutated.is_empty() {
            let at = idx as usize % mutated.len();
            mutated[at] ^= 1 << bit;
        }
        for codec in both() {
            decode_everything(&codec, &mutated);
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        for codec in both() {
            decode_everything(&codec, &bytes);
        }
    }

    #[test]
    fn decoding_then_reencoding_is_stable(state in arb_collapsed()) {
        for codec in both() {
            let bytes = codec.encode_collapsed(&state);
            let back = codec.decode_collapsed(&bytes).unwrap();
            prop_assert_eq!(codec.encode_collapsed(&back), bytes.clone());
        }
    }

    #[test]
    fn reading_batches_reencode_stably(readings in arb_readings()) {
        for codec in both() {
            let bytes = codec.encode_readings(&readings);
            let back = codec.decode_readings(&bytes).unwrap();
            prop_assert_eq!(codec.encode_readings(&back), bytes.clone());
        }
    }
}

/// Each epoch delta below is individually a legal zigzag varint, but their
/// running sum overflows `i64` — exactly the shape a hostile peer would send
/// to abort a site built with `overflow-checks`. Must be a clean error.
#[test]
fn zigzag_delta_sum_overflow_is_an_error_not_an_abort() {
    let tag = TagId::item(1);
    let table = TagTable::from_tags([tag]);
    let mut w = Writer::new();
    w.put_u8(WIRE_VERSION);
    w.put_u8(0x02); // KIND_READINGS
    table.encode(&mut w);
    w.put_varint(2); // two readings
    w.put_varint(0); // reading 1: tag index
    w.put_zigzag(i64::from(u32::MAX)); // epoch u32::MAX (valid)
    w.put_varint(0); // reader id
    w.put_varint(0); // reading 2: tag index
    w.put_zigzag(i64::MAX); // prev + delta wraps i64
    w.put_varint(0); // reader id
    let err = binary()
        .decode_readings(&w.into_bytes())
        .expect_err("overflowing epoch delta must be rejected");
    assert_eq!(err.kind(), WireErrorKind::LengthOverflow);
}

/// A declared byte-string length near `u64::MAX` used to wrap the
/// `pos + len` bounds check in release builds and panic on the slice; it is
/// now a typed `LengthOverflow`.
#[test]
fn huge_length_prefixes_are_length_overflow_errors() {
    let mut w = Writer::new();
    w.put_varint(u64::MAX);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let err = r.get_bytes().expect_err("length prefix exceeds any buffer");
    assert_eq!(err.kind(), WireErrorKind::LengthOverflow);
}

/// The chaos fault plan corrupts a poisoned envelope by flipping the high
/// bit of byte 0 — in the binary format that ruins the version byte, in JSON
/// the opening brace. Every payload kind must turn that into a typed
/// [`WireError`] (quarantine input), never a panic and never a silent
/// mis-decode. One case per wire payload kind, referenced by the `// FUZZ:`
/// annotations next to the `KIND_*` constants (lint rule
/// `wire-fuzz-coverage`).
#[test]
fn corrupted_byte_zero_is_a_typed_error_for_every_kind() {
    let state = ObjectQueryState {
        query: "Q1".to_string(),
        tag: TagId::item(1),
        automaton: AutomatonState::Idle,
    };
    for codec in both() {
        let encodings: Vec<(&str, Vec<u8>)> = vec![
            (
                "KIND_MIGRATION",
                codec.encode_migration(&MigrationState::None),
            ),
            (
                "KIND_READINGS",
                codec.encode_readings(&[RawReading::new(Epoch(1), TagId::item(1), ReaderId(0))]),
            ),
            ("KIND_QUERY_STATE", codec.encode_query_state(&state)),
            (
                "KIND_BUNDLE",
                codec.encode_bundle(&SharedStateBundle {
                    centroid_tag: TagId::item(1),
                    centroid_bytes: vec![1, 2, 3],
                    deltas: Vec::new(),
                }),
            ),
            (
                "KIND_COLLAPSED",
                codec.encode_collapsed(&CollapsedState {
                    object: TagId::item(1),
                    weights: [(TagId::case(1), 0.0)].into_iter().collect(),
                    container: Some(TagId::case(1)),
                }),
            ),
            ("KIND_STATE_PAYLOAD", codec.state_payload(&state)),
            (
                "KIND_CONTROL",
                codec.encode_control(&rfid_wire::ControlMsg::Ack {
                    from: 0,
                    to: 1,
                    seq: 4,
                }),
            ),
        ];
        for (kind, bytes) in &encodings {
            let mut poisoned = bytes.clone();
            poisoned[0] ^= 0x80;
            decode_everything(&codec, &poisoned);
            assert!(
                codec.decode_migration(&poisoned).is_err()
                    && codec.decode_readings(&poisoned).is_err()
                    && codec.decode_query_state(&poisoned).is_err()
                    && codec.decode_bundle(&poisoned).is_err()
                    && codec.decode_collapsed(&poisoned).is_err()
                    && codec.state_from_payload(TagId::item(1), &poisoned).is_err()
                    && codec.decode_control(&poisoned).is_err(),
                "poisoned {kind} must not decode as any payload"
            );
        }
    }
    // KIND_CHECKPOINT travels through its own codec entry point.
    for codec in both() {
        let checkpoint = codec.encode_checkpoint(&{
            use rfid_core::{DirtySet, EngineSnapshot, EvidenceCache, Observations, PriorWeights};
            use rfid_query::ProcessorSnapshot;
            use rfid_types::ContainmentMap;
            rfid_wire::SiteCheckpoint {
                site: 0,
                at: Epoch(0),
                engine: EngineSnapshot {
                    store: Observations::new(),
                    prior: PriorWeights::empty(),
                    containment: ContainmentMap::new(),
                    detected: Vec::new(),
                    last_outcome: None,
                    last_inference_at: None,
                    threshold: None,
                    dirty: DirtySet::new(),
                    cache: EvidenceCache::new(),
                },
                processor: ProcessorSnapshot {
                    temperatures: Vec::new(),
                    automata: Vec::new(),
                    alerts: Vec::new(),
                },
                reading_cursor: 0,
                sensor_cursor: 0,
                departure_cursor: 0,
                inbox: Vec::new(),
                comm_bytes: [0; 5],
                comm_messages: [0; 5],
                shared_bytes: 0,
                unshared_bytes: 0,
                inference_runs: 0,
                stats: Default::default(),
                inbox_seqs: Vec::new(),
                transport: Default::default(),
                quarantine: Vec::new(),
                memory: Default::default(),
                ledgers: Vec::new(),
            }
        });
        let mut poisoned = checkpoint;
        poisoned[0] ^= 0x80;
        decode_everything(&codec, &poisoned);
        assert!(
            codec.decode_checkpoint(&poisoned).is_err(),
            "poisoned KIND_CHECKPOINT must not decode"
        );
    }
}

/// Truncation and bad headers surface as their own machine-matchable kinds.
#[test]
fn error_kinds_classify_truncation_and_headers() {
    let valid = binary().encode_readings(&[RawReading::new(Epoch(3), TagId::item(1), ReaderId(0))]);
    let err = binary().decode_readings(&valid[..1]).unwrap_err();
    assert_eq!(err.kind(), WireErrorKind::Truncated);
    let mut wrong_version = valid.clone();
    wrong_version[0] = WIRE_VERSION + 1;
    let err = binary().decode_readings(&wrong_version).unwrap_err();
    assert_eq!(err.kind(), WireErrorKind::BadHeader);
    // Valid header of the wrong payload kind.
    let err = binary().decode_collapsed(&valid).unwrap_err();
    assert_eq!(err.kind(), WireErrorKind::BadHeader);
    // Checkpoints classify the same way: a readings payload is the wrong
    // kind, a truncated checkpoint is Truncated, a corrupted version byte is
    // BadHeader.
    let err = binary().decode_checkpoint(&valid).unwrap_err();
    assert_eq!(err.kind(), WireErrorKind::BadHeader);
    let err = binary().decode_checkpoint(&valid[..1]).unwrap_err();
    assert_eq!(err.kind(), WireErrorKind::Truncated);
}
