//! Deterministic fault injection for the distributed executors.
//!
//! A [`FaultPlan`] is a *pre-computed schedule* of failures, fixed entirely
//! by its seed at construction time: site crashes (with optional downtime),
//! reader-outage bursts, and per-shipment delivery faults (delay,
//! duplication). Because every decision is either tabulated up front or a
//! pure function of the shipment's identifying key, the same plan injects
//! the *identical* fault sequence regardless of execution order — sequential
//! and parallel executors, any worker count, any epoch interleaving.
//!
//! Two kinds of fault, with very different contracts:
//!
//! * **Crashes** ([`CrashFault`]) are *lossless* when `downtime_secs == 0`:
//!   the site loses its volatile state at the start of the crash epoch,
//!   restores from its last checkpoint, replays the trace tail, and the run
//!   must finish bit-identical to an uninterrupted one. With downtime the
//!   site additionally skips epochs, which is lossy by design.
//! * **Outages, delays and duplicates** are lossy: they change which
//!   readings and shipments a site sees. They feed the `faults` accuracy-
//!   degradation experiment, not the bit-identity tests.
//! * **Losses, ack losses and link partitions** drive the reliable-delivery
//!   transport in `rfid-dist`: individual transmission attempts (and their
//!   acks) vanish, or a directed link goes dark for a tabulated window.
//!   Whether the payload still arrives depends on the transport's retry
//!   budget; these faults feed the `degraded` experiment.
//! * **Corruption, rogue readings and clock skew** feed the `chaos` soak
//!   (see [`crate::chaos::ChaosPlan`]): a corrupted envelope's bytes are
//!   bit-flipped on the link as a pure function of `(edge, seq)` and must be
//!   quarantined by the receiver, a rogue reader clones a tag reading at a
//!   spurious antenna, and a skewed site observes its RFID feed late by a
//!   tabulated per-site offset.

use crate::chain::ChainTrace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{Epoch, TagId};
use serde::{Deserialize, Serialize};

/// Parameters from which a [`FaultPlan`] is generated.
///
/// All probabilities are per independent trial: `crash_probability` and
/// `outage_probability` per site, `delay_probability` and
/// `duplicate_probability` per shipment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Master seed; everything else being equal, the same seed produces the
    /// same plan and the same per-shipment decisions.
    pub seed: u64,
    /// Number of sites the plan covers.
    pub num_sites: u16,
    /// Trace horizon in seconds; scheduled faults land inside it.
    pub horizon_secs: u32,
    /// Chance that a site crashes once during the run.
    pub crash_probability: f64,
    /// Upper bound on post-crash downtime; `0` makes crashes lossless
    /// (restore within the crash epoch).
    pub max_downtime_secs: u32,
    /// Chance that a site suffers a reader-outage burst.
    pub outage_probability: f64,
    /// Upper bound on the length of one outage burst.
    pub outage_max_secs: u32,
    /// Chance that a shipment's delivery is delayed.
    pub delay_probability: f64,
    /// Upper bound on the delivery delay of one shipment.
    pub delay_max_secs: u32,
    /// Chance that a shipment is delivered twice.
    pub duplicate_probability: f64,
    /// Chance that one *transmission attempt* of a cross-site payload is
    /// lost in transit. Each retransmission draws independently.
    pub loss_probability: f64,
    /// Chance that the ack for a delivered attempt is lost on the way back,
    /// provoking a spurious retransmission.
    pub ack_loss_probability: f64,
    /// Chance that a directed link suffers one partition window during the
    /// run.
    pub partition_probability: f64,
    /// Upper bound on the length of one partition window.
    pub partition_max_secs: u32,
    /// Chance that a sequenced envelope's payload bytes are corrupted in
    /// transit (bit-flips keyed by `(edge, seq)`). The receiver must
    /// quarantine the poisoned envelope instead of panicking.
    pub corruption_probability: f64,
    /// Chance that an RFID reading is cloned by a rogue reader at a spurious
    /// antenna of the same site, keyed by `(site, epoch, tag)`.
    pub rogue_probability: f64,
    /// Upper bound on a site's constant clock skew: its RFID feed is
    /// observed `skew` seconds late. `0` disables skew entirely.
    pub clock_skew_max_secs: u32,
}

impl FaultPlanConfig {
    /// A configuration with every fault disabled — the identity plan.
    pub fn quiet(seed: u64, num_sites: u16, horizon_secs: u32) -> FaultPlanConfig {
        FaultPlanConfig {
            seed,
            num_sites,
            horizon_secs,
            crash_probability: 0.0,
            max_downtime_secs: 0,
            outage_probability: 0.0,
            outage_max_secs: 0,
            delay_probability: 0.0,
            delay_max_secs: 0,
            duplicate_probability: 0.0,
            loss_probability: 0.0,
            ack_loss_probability: 0.0,
            partition_probability: 0.0,
            partition_max_secs: 0,
            corruption_probability: 0.0,
            rogue_probability: 0.0,
            clock_skew_max_secs: 0,
        }
    }

    /// The lossy preset used by the `faults` experiment: no crashes, but
    /// reader outages and delayed/duplicated shipments on every site. No
    /// transport faults — the legacy direct-delivery path stays byte-exact.
    pub fn lossy(seed: u64, num_sites: u16, horizon_secs: u32) -> FaultPlanConfig {
        FaultPlanConfig {
            crash_probability: 0.0,
            max_downtime_secs: 0,
            outage_probability: 0.75,
            outage_max_secs: horizon_secs / 8,
            delay_probability: 0.25,
            delay_max_secs: 120,
            duplicate_probability: 0.1,
            ..FaultPlanConfig::quiet(seed, num_sites, horizon_secs)
        }
    }

    /// The unreliable-network preset used by the `degraded` experiment:
    /// attempt losses, ack losses and per-link partition windows, but no
    /// crashes or reader outages — accuracy degradation is attributable to
    /// the transport alone.
    pub fn unreliable(seed: u64, num_sites: u16, horizon_secs: u32) -> FaultPlanConfig {
        FaultPlanConfig {
            loss_probability: 0.15,
            ack_loss_probability: 0.1,
            partition_probability: 0.4,
            partition_max_secs: horizon_secs / 6,
            ..FaultPlanConfig::quiet(seed, num_sites, horizon_secs)
        }
    }
}

/// One scheduled site crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The site loses its volatile state at the *start* of this epoch,
    /// before ingesting anything.
    pub at: Epoch,
    /// Epochs the site stays down after the crash; `0` restores within the
    /// crash epoch (lossless).
    pub downtime_secs: u32,
}

impl CrashFault {
    /// First epoch at which the site works again: `at` itself when downtime
    /// is zero.
    pub fn resume_at(&self) -> Epoch {
        Epoch(self.at.0.saturating_add(self.downtime_secs))
    }
}

/// One reader-outage burst: the site's readers report nothing in
/// `from..=until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// First silent epoch.
    pub from: Epoch,
    /// Last silent epoch (inclusive).
    pub until: Epoch,
}

impl OutageWindow {
    /// Whether `at` falls inside the burst.
    pub fn covers(&self, at: Epoch) -> bool {
        self.from <= at && at <= self.until
    }
}

/// One tabulated partition window of a *directed* link: payloads sent
/// `from_site → to_site` while the window covers the send epoch are lost
/// (the reverse direction has its own independent window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Sending side of the dark link.
    pub from_site: u16,
    /// Receiving side of the dark link.
    pub to_site: u16,
    /// First dark epoch.
    pub from: Epoch,
    /// Last dark epoch (inclusive).
    pub until: Epoch,
}

impl PartitionWindow {
    /// Whether a send at `at` over this directed link is swallowed.
    pub fn covers(&self, at: Epoch) -> bool {
        self.from <= at && at <= self.until
    }
}

/// The faults scheduled for one site.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFaults {
    /// At most one crash per run.
    pub crash: Option<CrashFault>,
    /// Reader-outage bursts, disjoint and in ascending epoch order.
    pub outages: Vec<OutageWindow>,
    /// Constant clock skew of the site's RFID feed, in seconds; `0` means
    /// the site's clock is true.
    pub clock_skew_secs: u32,
}

/// One entry of [`FaultPlan::events`] — the scheduled (per-site) faults in a
/// canonical order, for pinning determinism in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A scheduled crash.
    Crash {
        /// Crashing site.
        site: u16,
        /// Crash epoch.
        at: Epoch,
        /// Downtime after the crash.
        downtime_secs: u32,
    },
    /// A scheduled reader outage.
    Outage {
        /// Affected site.
        site: u16,
        /// First silent epoch.
        from: Epoch,
        /// Last silent epoch (inclusive).
        until: Epoch,
    },
    /// A scheduled directed-link partition.
    Partition {
        /// Sending side of the dark link.
        from_site: u16,
        /// Receiving side of the dark link.
        to_site: u16,
        /// First dark epoch.
        from: Epoch,
        /// Last dark epoch (inclusive).
        until: Epoch,
    },
    /// A tabulated per-site clock skew.
    ClockSkew {
        /// Skewed site.
        site: u16,
        /// Constant lateness of the site's RFID feed, in seconds.
        skew_secs: u32,
    },
}

/// A deterministic, order-independent fault schedule.
///
/// Site-level faults (crashes, outages) are tabulated at construction from a
/// per-site `ChaCha8` stream; shipment-level faults (delay, duplication) are
/// pure functions of the shipment's `(from, to, tag, depart)` key, hashed
/// into a fresh `ChaCha8` seed. Querying the plan never mutates it, so any
/// number of workers asking in any order observe the same answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    delay_probability: f64,
    delay_max_secs: u32,
    duplicate_probability: f64,
    loss_probability: f64,
    ack_loss_probability: f64,
    corruption_probability: f64,
    rogue_probability: f64,
    sites: Vec<SiteFaults>,
    /// Directed-link partition windows, tabulated at generation time in
    /// canonical `(from_site, to_site)` order.
    partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// Generate the plan for `config`, fixing every site-level fault.
    pub fn generate(config: &FaultPlanConfig) -> FaultPlan {
        let horizon = config.horizon_secs.max(1);
        let sites = (0..config.num_sites)
            .map(|site| {
                let mut rng = ChaCha8Rng::seed_from_u64(site_seed(config.seed, site));
                let crash = if config.crash_probability > 0.0
                    && rng.gen_bool(config.crash_probability.min(1.0))
                {
                    // Crash somewhere in the middle half of the run, so a
                    // checkpoint exists before it and epochs remain after it.
                    let at = Epoch(rng.gen_range(horizon / 4..=horizon * 3 / 4));
                    let downtime_secs = if config.max_downtime_secs > 0 {
                        rng.gen_range(0..=config.max_downtime_secs)
                    } else {
                        0
                    };
                    Some(CrashFault { at, downtime_secs })
                } else {
                    None
                };
                let mut outages = Vec::new();
                if config.outage_probability > 0.0
                    && config.outage_max_secs > 0
                    && rng.gen_bool(config.outage_probability.min(1.0))
                {
                    let len = rng.gen_range(1..=config.outage_max_secs);
                    let latest_start = horizon.saturating_sub(len).max(1);
                    let from = rng.gen_range(1..=latest_start);
                    outages.push(OutageWindow {
                        from: Epoch(from),
                        until: Epoch(from + len - 1),
                    });
                }
                // The skew draw comes *after* the crash/outage draws, so
                // enabling skew never perturbs the existing schedules of a
                // plan with the same seed.
                let clock_skew_secs = if config.clock_skew_max_secs > 0 {
                    rng.gen_range(0..=config.clock_skew_max_secs)
                } else {
                    0
                };
                SiteFaults {
                    crash,
                    outages,
                    clock_skew_secs,
                }
            })
            .collect();
        let mut partitions = Vec::new();
        if config.partition_probability > 0.0 && config.partition_max_secs > 0 {
            // Each *directed* edge draws from its own key-hashed stream, so
            // the tabulation is independent of iteration details elsewhere.
            for from_site in 0..config.num_sites {
                for to_site in 0..config.num_sites {
                    if from_site == to_site {
                        continue;
                    }
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(edge_seed(config.seed, from_site, to_site));
                    if rng.gen_bool(config.partition_probability.min(1.0)) {
                        let len = rng.gen_range(1..=config.partition_max_secs.min(horizon));
                        let latest_start = horizon.saturating_sub(len).max(1);
                        let from = rng.gen_range(1..=latest_start);
                        partitions.push(PartitionWindow {
                            from_site,
                            to_site,
                            from: Epoch(from),
                            until: Epoch(from + len - 1),
                        });
                    }
                }
            }
        }
        FaultPlan {
            seed: config.seed,
            delay_probability: config.delay_probability,
            delay_max_secs: config.delay_max_secs,
            duplicate_probability: config.duplicate_probability,
            loss_probability: config.loss_probability,
            ack_loss_probability: config.ack_loss_probability,
            corruption_probability: config.corruption_probability,
            rogue_probability: config.rogue_probability,
            sites,
            partitions,
        }
    }

    /// A plan whose only fault is a crash of `site` at `at` with the given
    /// downtime — the scripted form used by the crash-consistency sweep.
    pub fn scripted_crash(num_sites: u16, site: u16, at: Epoch, downtime_secs: u32) -> FaultPlan {
        let mut sites = vec![SiteFaults::default(); usize::from(num_sites)];
        if let Some(faults) = sites.get_mut(usize::from(site)) {
            faults.crash = Some(CrashFault { at, downtime_secs });
        }
        FaultPlan {
            seed: 0,
            delay_probability: 0.0,
            delay_max_secs: 0,
            duplicate_probability: 0.0,
            loss_probability: 0.0,
            ack_loss_probability: 0.0,
            corruption_probability: 0.0,
            rogue_probability: 0.0,
            sites,
            partitions: Vec::new(),
        }
    }

    /// The same plan with an additional scripted crash of `site` at `at` —
    /// the hook the chaos crash-consistency sweep uses to crash a site at
    /// every epoch of an otherwise unchanged chaotic schedule.
    pub fn with_scripted_crash(mut self, site: u16, at: Epoch, downtime_secs: u32) -> FaultPlan {
        if let Some(faults) = self.sites.get_mut(usize::from(site)) {
            faults.crash = Some(CrashFault { at, downtime_secs });
        }
        self
    }

    /// A plan whose only fault is a symmetric partition of the link between
    /// `a` and `b` over `from..=until` — the scripted form used by the
    /// degraded-mode tests and the `degraded` experiment's partition
    /// scenario. Both directions of the link go dark.
    pub fn scripted_partition(
        num_sites: u16,
        a: u16,
        b: u16,
        from: Epoch,
        until: Epoch,
    ) -> FaultPlan {
        let mut partitions = Vec::new();
        if a < num_sites && b < num_sites && a != b {
            partitions.push(PartitionWindow {
                from_site: a.min(b),
                to_site: a.max(b),
                from,
                until,
            });
            partitions.push(PartitionWindow {
                from_site: a.max(b),
                to_site: a.min(b),
                from,
                until,
            });
        }
        FaultPlan {
            seed: 0,
            delay_probability: 0.0,
            delay_max_secs: 0,
            duplicate_probability: 0.0,
            loss_probability: 0.0,
            ack_loss_probability: 0.0,
            corruption_probability: 0.0,
            rogue_probability: 0.0,
            sites: vec![SiteFaults::default(); usize::from(num_sites)],
            partitions,
        }
    }

    /// The scheduled crash of `site`, if any.
    pub fn crash(&self, site: u16) -> Option<CrashFault> {
        self.sites.get(usize::from(site)).and_then(|f| f.crash)
    }

    /// Whether `site`'s readers are silent at `at`.
    pub fn reading_dropped(&self, site: u16, at: Epoch) -> bool {
        self.sites
            .get(usize::from(site))
            .map(|f| f.outages.iter().any(|w| w.covers(at)))
            .unwrap_or(false)
    }

    /// Extra transit seconds for the shipment identified by
    /// `(from, to, tag, depart)`; `0` when the shipment is on time. A pure
    /// function of the key — identical across runs and worker counts.
    pub fn shipment_delay_secs(&self, from: u16, to: u16, tag: TagId, depart: Epoch) -> u32 {
        if self.delay_probability <= 0.0 || self.delay_max_secs == 0 {
            return 0;
        }
        let mut rng = self.shipment_rng(from, to, tag, depart, 0x0de1);
        if rng.gen_bool(self.delay_probability.min(1.0)) {
            rng.gen_range(1..=self.delay_max_secs)
        } else {
            0
        }
    }

    /// Whether the shipment identified by `(from, to, tag, depart)` is
    /// delivered twice. A pure function of the key.
    pub fn shipment_duplicated(&self, from: u16, to: u16, tag: TagId, depart: Epoch) -> bool {
        if self.duplicate_probability <= 0.0 {
            return false;
        }
        let mut rng = self.shipment_rng(from, to, tag, depart, 0xd0b1);
        rng.gen_bool(self.duplicate_probability.min(1.0))
    }

    /// Whether transmission attempt `attempt` (0-based) of the payload
    /// identified by `(from, to, tag, depart)` is lost in transit. A pure
    /// function of the key — every retransmission draws independently, and
    /// the answer is identical across runs and worker counts.
    pub fn message_lost(
        &self,
        from: u16,
        to: u16,
        tag: TagId,
        depart: Epoch,
        attempt: u32,
    ) -> bool {
        if self.loss_probability <= 0.0 {
            return false;
        }
        let mut rng = self.attempt_rng(from, to, tag, depart, attempt, 0x105e);
        rng.gen_bool(self.loss_probability.min(1.0))
    }

    /// Whether the ack for attempt `attempt` of the payload identified by
    /// `(from, to, tag, depart)` is lost on the reverse path. A pure function
    /// of the key.
    pub fn ack_lost(&self, from: u16, to: u16, tag: TagId, depart: Epoch, attempt: u32) -> bool {
        if self.ack_loss_probability <= 0.0 {
            return false;
        }
        let mut rng = self.attempt_rng(from, to, tag, depart, attempt, 0x0ac4);
        rng.gen_bool(self.ack_loss_probability.min(1.0))
    }

    /// Whether the directed link `from → to` is partitioned at `at`: a send
    /// over the link at that epoch is swallowed regardless of loss draws.
    pub fn link_partitioned(&self, from: u16, to: u16, at: Epoch) -> bool {
        self.partitions
            .iter()
            .any(|w| w.from_site == from && w.to_site == to && w.covers(at))
    }

    /// Whether attempt `attempt` of the centralized reading-batch forward
    /// from `site` at `epoch` is lost. Centralized forwarding is keyed by
    /// `(site, epoch)` rather than a shipment tag; partitions do not apply
    /// to the coordinator uplink.
    pub fn forward_lost(&self, site: u16, epoch: Epoch, attempt: u32) -> bool {
        if self.loss_probability <= 0.0 {
            return false;
        }
        let mut key = self.seed ^ 0xf04d;
        key = mix(key, u64::from(site));
        key = mix(key, u64::from(epoch.0));
        key = mix(key, u64::from(attempt));
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        rng.gen_bool(self.loss_probability.min(1.0))
    }

    /// Whether the sequenced envelope `seq` on the directed link
    /// `from → to` has its payload bytes corrupted in transit. A pure
    /// function of `(edge, seq)`: every retransmitted copy of the envelope
    /// carries the same poisoned bytes.
    pub fn payload_corrupted(&self, from: u16, to: u16, seq: u64) -> bool {
        if self.corruption_probability <= 0.0 {
            return false;
        }
        let mut key = self.seed ^ 0xc042;
        key = mix(key, u64::from(from));
        key = mix(key, u64::from(to));
        key = mix(key, seq);
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        rng.gen_bool(self.corruption_probability.min(1.0))
    }

    /// The spurious reader slot (in `0..num_readers`) at which a rogue
    /// reader clones the reading of `tag` observed by `site` at `at`, if
    /// any. A pure function of `(site, at, tag)`.
    pub fn rogue_reader_slot(
        &self,
        site: u16,
        at: Epoch,
        tag: TagId,
        num_readers: u16,
    ) -> Option<u16> {
        if self.rogue_probability <= 0.0 || num_readers == 0 {
            return None;
        }
        let mut key = self.seed ^ 0x409e;
        key = mix(key, u64::from(site));
        key = mix(key, u64::from(at.0));
        key = mix(key, tag.raw());
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        if rng.gen_bool(self.rogue_probability.min(1.0)) {
            Some(rng.gen_range(0..num_readers))
        } else {
            None
        }
    }

    /// The tabulated clock skew of `site`: its RFID feed is observed this
    /// many seconds late.
    pub fn clock_skew_secs(&self, site: u16) -> u32 {
        self.sites
            .get(usize::from(site))
            .map(|f| f.clock_skew_secs)
            .unwrap_or(0)
    }

    /// Whether the plan can lose payloads at all — the trigger for the
    /// reliable transport's ack/retransmit machinery. Corruption counts:
    /// a poisoned envelope is quarantined, which only the sequenced
    /// (Reliable) path can recover from via `Resync` anti-entropy.
    pub fn has_transport_faults(&self) -> bool {
        self.loss_probability > 0.0
            || self.ack_loss_probability > 0.0
            || self.corruption_probability > 0.0
            || !self.partitions.is_empty()
    }

    /// All partition windows of the directed link `from → to`, in start
    /// order.
    pub fn link_partitions(&self, from: u16, to: u16) -> Vec<PartitionWindow> {
        let mut windows: Vec<PartitionWindow> = self
            .partitions
            .iter()
            .filter(|w| w.from_site == from && w.to_site == to)
            .copied()
            .collect();
        windows.sort_by_key(|w| w.from);
        windows
    }

    /// The scheduled (site-level) faults in canonical order: by site, crashes
    /// before outages (by start epoch) before the site's clock skew; then
    /// partition windows by `(from_site, to_site, start)`. Equal seeds
    /// produce equal event lists — the hook the determinism tests pin.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for (site, faults) in self.sites.iter().enumerate() {
            let site = site as u16;
            if let Some(crash) = faults.crash {
                events.push(FaultEvent::Crash {
                    site,
                    at: crash.at,
                    downtime_secs: crash.downtime_secs,
                });
            }
            for outage in &faults.outages {
                events.push(FaultEvent::Outage {
                    site,
                    from: outage.from,
                    until: outage.until,
                });
            }
            if faults.clock_skew_secs > 0 {
                events.push(FaultEvent::ClockSkew {
                    site,
                    skew_secs: faults.clock_skew_secs,
                });
            }
        }
        let mut partitions = self.partitions.clone();
        partitions.sort_by_key(|w| (w.from_site, w.to_site, w.from));
        for w in partitions {
            events.push(FaultEvent::Partition {
                from_site: w.from_site,
                to_site: w.to_site,
                from: w.from,
                until: w.until,
            });
        }
        events
    }

    /// Whether the plan schedules or can produce any fault at all.
    pub fn is_quiet(&self) -> bool {
        self.delay_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.rogue_probability <= 0.0
            && !self.has_transport_faults()
            && self
                .sites
                .iter()
                .all(|f| f.crash.is_none() && f.outages.is_empty() && f.clock_skew_secs == 0)
    }

    /// Check the plan against a generated trace: every shipment-delay draw
    /// for the trace's transfers, plus the event list. Used by tests to pin
    /// that two plans behave identically on a concrete workload.
    pub fn trace_decisions(&self, chain: &ChainTrace) -> Vec<(TagId, Epoch, u32, bool)> {
        chain
            .transfers
            .iter()
            .map(|t| {
                let from = t.from_site.0;
                let to = t.to_site.0;
                (
                    t.tag,
                    t.depart,
                    self.shipment_delay_secs(from, to, t.tag, t.depart),
                    self.shipment_duplicated(from, to, t.tag, t.depart),
                )
            })
            .collect()
    }

    fn shipment_rng(&self, from: u16, to: u16, tag: TagId, depart: Epoch, salt: u64) -> ChaCha8Rng {
        let mut key = self.seed ^ salt;
        key = mix(key, u64::from(from));
        key = mix(key, u64::from(to));
        key = mix(key, tag.raw());
        key = mix(key, u64::from(depart.0));
        ChaCha8Rng::seed_from_u64(key)
    }

    fn attempt_rng(
        &self,
        from: u16,
        to: u16,
        tag: TagId,
        depart: Epoch,
        attempt: u32,
        salt: u64,
    ) -> ChaCha8Rng {
        let mut key = self.seed ^ salt;
        key = mix(key, u64::from(from));
        key = mix(key, u64::from(to));
        key = mix(key, tag.raw());
        key = mix(key, u64::from(depart.0));
        key = mix(key, u64::from(attempt));
        ChaCha8Rng::seed_from_u64(key)
    }
}

/// Decorrelated per-index seed for multi-schedule chaos sweeps.
pub(crate) fn derive_seed(master: u64, index: u64) -> u64 {
    mix(master ^ 0xc0a5, index)
}

/// Per-site stream seed, decorrelated from neighbouring sites.
fn site_seed(seed: u64, site: u16) -> u64 {
    mix(seed ^ 0xfa17, u64::from(site))
}

/// Per-directed-edge stream seed for partition tabulation.
fn edge_seed(seed: u64, from: u16, to: u16) -> u64 {
    mix(mix(seed ^ 0x9a27, u64::from(from)), u64::from(to))
}

/// SplitMix64-style avalanche step folding `v` into `h`.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(&FaultPlanConfig::lossy(seed, 8, 2400))
    }

    #[test]
    fn same_seed_produces_identical_plans_and_events() {
        let a = lossy_plan(7);
        let b = lossy_plan(7);
        assert_eq!(a, b);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let plans: Vec<FaultPlan> = (0..8).map(lossy_plan).collect();
        let distinct = plans
            .iter()
            .map(|p| format!("{:?}", p.events()))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            distinct.len() > 1,
            "eight seeds should not all share one schedule"
        );
    }

    #[test]
    fn shipment_decisions_are_pure_functions_of_the_key() {
        let plan = lossy_plan(11);
        let tag = TagId::item(42);
        let first = (
            plan.shipment_delay_secs(0, 1, tag, Epoch(300)),
            plan.shipment_duplicated(0, 1, tag, Epoch(300)),
        );
        // Interleave queries for other keys, then re-ask: the answer cannot
        // depend on query order.
        for serial in 0..50 {
            plan.shipment_delay_secs(1, 2, TagId::item(serial), Epoch(500));
            plan.shipment_duplicated(2, 3, TagId::case(serial), Epoch(700));
        }
        let second = (
            plan.shipment_delay_secs(0, 1, tag, Epoch(300)),
            plan.shipment_duplicated(0, 1, tag, Epoch(300)),
        );
        assert_eq!(first, second);
    }

    #[test]
    fn lossy_preset_actually_injects_faults() {
        let plan = lossy_plan(3);
        assert!(!plan.is_quiet());
        assert!(!plan.events().is_empty(), "expected at least one outage");
        let mut delayed = 0;
        let mut duplicated = 0;
        for serial in 0..400u64 {
            let tag = TagId::item(serial);
            if plan.shipment_delay_secs(0, 1, tag, Epoch(serial as u32)) > 0 {
                delayed += 1;
            }
            if plan.shipment_duplicated(0, 1, tag, Epoch(serial as u32)) {
                duplicated += 1;
            }
        }
        assert!(
            delayed > 0,
            "delay probability 0.25 never fired in 400 draws"
        );
        assert!(
            duplicated > 0,
            "dup probability 0.1 never fired in 400 draws"
        );
    }

    #[test]
    fn quiet_config_yields_the_identity_plan() {
        let plan = FaultPlan::generate(&FaultPlanConfig::quiet(9, 4, 1000));
        assert!(plan.is_quiet());
        assert!(plan.events().is_empty());
        assert_eq!(plan.crash(0), None);
        assert!(!plan.reading_dropped(2, Epoch(500)));
        assert_eq!(plan.shipment_delay_secs(0, 1, TagId::item(1), Epoch(5)), 0);
        assert!(!plan.shipment_duplicated(0, 1, TagId::item(1), Epoch(5)));
    }

    #[test]
    fn scripted_crash_hits_exactly_one_site() {
        let plan = FaultPlan::scripted_crash(4, 2, Epoch(600), 0);
        assert_eq!(
            plan.crash(2),
            Some(CrashFault {
                at: Epoch(600),
                downtime_secs: 0
            })
        );
        for site in [0, 1, 3] {
            assert_eq!(plan.crash(site), None);
        }
        assert_eq!(
            plan.events(),
            vec![FaultEvent::Crash {
                site: 2,
                at: Epoch(600),
                downtime_secs: 0
            }]
        );
        assert_eq!(plan.crash(2).unwrap().resume_at(), Epoch(600));
        assert_eq!(
            FaultPlan::scripted_crash(4, 1, Epoch(100), 50)
                .crash(1)
                .unwrap()
                .resume_at(),
            Epoch(150)
        );
    }

    fn unreliable_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(&FaultPlanConfig::unreliable(seed, 8, 2400))
    }

    #[test]
    fn loss_and_ack_draws_are_pure_functions_of_the_key() {
        let plan = unreliable_plan(13);
        let tag = TagId::case(7);
        let first: Vec<(bool, bool)> = (0..6)
            .map(|attempt| {
                (
                    plan.message_lost(1, 2, tag, Epoch(400), attempt),
                    plan.ack_lost(1, 2, tag, Epoch(400), attempt),
                )
            })
            .collect();
        // Interleave unrelated queries, then re-ask: answers cannot depend
        // on query order (the worker-count-independence contract).
        for serial in 0..50 {
            plan.message_lost(2, 3, TagId::item(serial), Epoch(900), 0);
            plan.ack_lost(0, 1, TagId::pallet(serial), Epoch(100), 1);
            plan.forward_lost(3, Epoch(serial as u32), 0);
        }
        let second: Vec<(bool, bool)> = (0..6)
            .map(|attempt| {
                (
                    plan.message_lost(1, 2, tag, Epoch(400), attempt),
                    plan.ack_lost(1, 2, tag, Epoch(400), attempt),
                )
            })
            .collect();
        assert_eq!(first, second);
        // Attempts draw independently: across many keys at 15% loss some
        // first attempts survive and some retransmissions also fail.
        let mut lost_first = 0;
        let mut lost_retry = 0;
        for serial in 0..400u64 {
            let tag = TagId::item(serial);
            if plan.message_lost(0, 1, tag, Epoch(serial as u32), 0) {
                lost_first += 1;
            }
            if plan.message_lost(0, 1, tag, Epoch(serial as u32), 1) {
                lost_retry += 1;
            }
        }
        assert!(lost_first > 0, "loss probability 0.15 never fired");
        assert!(lost_retry > 0, "retry attempts must draw independently");
        assert!(lost_first < 400, "loss probability 0.15 fired every time");
    }

    #[test]
    fn partition_windows_are_tabulated_identically_for_equal_seeds() {
        let a = unreliable_plan(29);
        let b = unreliable_plan(29);
        assert_eq!(a, b);
        assert_eq!(a.events(), b.events());
        assert!(a.has_transport_faults());
        let partitions: Vec<FaultEvent> = a
            .events()
            .into_iter()
            .filter(|e| matches!(e, FaultEvent::Partition { .. }))
            .collect();
        assert!(
            !partitions.is_empty(),
            "partition probability 0.4 over 56 directed edges never fired"
        );
        // The tabulation agrees with the point query for every window.
        for event in &partitions {
            if let FaultEvent::Partition {
                from_site,
                to_site,
                from,
                until,
            } = *event
            {
                assert!(a.link_partitioned(from_site, to_site, from));
                assert!(a.link_partitioned(from_site, to_site, until));
                assert!(!a.link_partitioned(from_site, to_site, Epoch(until.0 + 1)));
            }
        }
    }

    #[test]
    fn scripted_partition_darkens_both_directions_only_in_window() {
        let plan = FaultPlan::scripted_partition(4, 1, 2, Epoch(300), Epoch(600));
        assert!(plan.has_transport_faults());
        assert!(plan.link_partitioned(1, 2, Epoch(300)));
        assert!(plan.link_partitioned(2, 1, Epoch(600)));
        assert!(!plan.link_partitioned(1, 2, Epoch(299)));
        assert!(!plan.link_partitioned(2, 1, Epoch(601)));
        assert!(!plan.link_partitioned(0, 1, Epoch(400)));
        assert_eq!(plan.link_partitions(1, 2).len(), 1);
        assert_eq!(plan.events().len(), 2, "one window per direction");
        // Loss draws stay quiet on a scripted partition plan.
        assert!(!plan.message_lost(1, 2, TagId::item(1), Epoch(10), 0));
        assert!(!plan.forward_lost(1, Epoch(10), 0));
    }

    #[test]
    fn quiet_and_lossy_presets_have_no_transport_faults() {
        let quiet = FaultPlan::generate(&FaultPlanConfig::quiet(9, 4, 1000));
        assert!(!quiet.has_transport_faults());
        let lossy = lossy_plan(5);
        assert!(
            !lossy.has_transport_faults(),
            "lossy preset must keep the legacy direct-delivery byte behavior"
        );
        assert!(!lossy.message_lost(0, 1, TagId::item(1), Epoch(5), 0));
        assert!(!lossy.ack_lost(0, 1, TagId::item(1), Epoch(5), 0));
        let unreliable = unreliable_plan(5);
        assert!(unreliable.has_transport_faults());
        assert!(!unreliable.is_quiet());
    }

    fn chaotic_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(&FaultPlanConfig {
            corruption_probability: 0.2,
            rogue_probability: 0.1,
            clock_skew_max_secs: 60,
            ..FaultPlanConfig::quiet(seed, 8, 2400)
        })
    }

    #[test]
    fn corruption_and_rogue_draws_are_pure_functions_of_the_key() {
        let plan = chaotic_plan(17);
        assert!(
            plan.has_transport_faults(),
            "corruption wakes the transport"
        );
        assert!(!plan.is_quiet());
        let first = (
            plan.payload_corrupted(0, 1, 7),
            plan.rogue_reader_slot(2, Epoch(300), TagId::item(4), 5),
        );
        for serial in 0..50 {
            plan.payload_corrupted(1, 2, serial);
            plan.rogue_reader_slot(3, Epoch(serial as u32), TagId::case(serial), 4);
        }
        let second = (
            plan.payload_corrupted(0, 1, 7),
            plan.rogue_reader_slot(2, Epoch(300), TagId::item(4), 5),
        );
        assert_eq!(first, second);
        // Across many keys both families fire at least once and never
        // saturate, and rogue slots stay inside the reader range.
        let mut corrupted = 0;
        let mut rogue = 0;
        for serial in 0..400u64 {
            if plan.payload_corrupted(0, 1, serial) {
                corrupted += 1;
            }
            if let Some(slot) =
                plan.rogue_reader_slot(1, Epoch(serial as u32), TagId::item(serial), 3)
            {
                assert!(slot < 3, "rogue slot out of reader range");
                rogue += 1;
            }
        }
        assert!(corrupted > 0 && corrupted < 400);
        assert!(rogue > 0 && rogue < 400);
        assert_eq!(
            plan.rogue_reader_slot(1, Epoch(5), TagId::item(1), 0),
            None,
            "a site without readers has no rogue slot"
        );
    }

    #[test]
    fn clock_skew_is_tabulated_per_site_and_listed_in_events() {
        let a = chaotic_plan(23);
        let b = chaotic_plan(23);
        assert_eq!(a, b);
        let skews: Vec<u32> = (0..8).map(|s| a.clock_skew_secs(s)).collect();
        assert!(
            skews.iter().any(|&s| s > 0),
            "skew max 60 over 8 sites never fired"
        );
        let skew_events: Vec<FaultEvent> = a
            .events()
            .into_iter()
            .filter(|e| matches!(e, FaultEvent::ClockSkew { .. }))
            .collect();
        for event in &skew_events {
            if let FaultEvent::ClockSkew { site, skew_secs } = *event {
                assert_eq!(a.clock_skew_secs(site), skew_secs);
            }
        }
        assert_eq!(
            skew_events.len(),
            skews.iter().filter(|&&s| s > 0).count(),
            "every nonzero skew must appear exactly once in the event list"
        );
        // Enabling the chaos knobs must not perturb the legacy draws of a
        // same-seed plan: the quiet plan and the chaotic plan agree on every
        // legacy query.
        let quiet = FaultPlan::generate(&FaultPlanConfig::quiet(23, 8, 2400));
        assert_eq!(quiet.crash(3), a.crash(3));
        assert_eq!(
            quiet.shipment_delay_secs(0, 1, TagId::item(9), Epoch(40)),
            a.shipment_delay_secs(0, 1, TagId::item(9), Epoch(40))
        );
    }

    #[test]
    fn quiet_plans_never_corrupt_clone_or_skew() {
        let plan = FaultPlan::generate(&FaultPlanConfig::quiet(9, 4, 1000));
        assert!(!plan.payload_corrupted(0, 1, 3));
        assert_eq!(plan.rogue_reader_slot(0, Epoch(5), TagId::item(1), 4), None);
        assert_eq!(plan.clock_skew_secs(2), 0);
        let with_crash = plan.with_scripted_crash(1, Epoch(400), 30);
        assert_eq!(
            with_crash.crash(1),
            Some(CrashFault {
                at: Epoch(400),
                downtime_secs: 30
            })
        );
        assert_eq!(with_crash.crash(0), None);
    }

    #[test]
    fn outage_windows_cover_their_range_inclusively() {
        let window = OutageWindow {
            from: Epoch(10),
            until: Epoch(20),
        };
        assert!(!window.covers(Epoch(9)));
        assert!(window.covers(Epoch(10)));
        assert!(window.covers(Epoch(20)));
        assert!(!window.covers(Epoch(21)));
    }
}
