//! Canonical workload presets shared by benchmarks and integration tests.
//!
//! Two chains recur throughout the workspace and were historically
//! re-declared wherever they were needed; this module is now their single
//! definition:
//!
//! * the **seed-97 short-dwell reference chain** — the 8-site configuration
//!   behind `BENCH_wire.json`, `BENCH_parallel.json` and `BENCH_faults.json`:
//!   short shelf dwells and a fast injection cadence so objects hop sites
//!   often and migration (and fault recovery) dominates;
//! * the **seed-55 smoke chain** — the small 3-site chain the integration
//!   and determinism tests run at.

use crate::chain::{ChainTrace, SupplyChainSimulator};
use crate::config::{ChainConfig, WarehouseConfig};
use crate::fault::{FaultPlan, FaultPlanConfig};

/// Seed of the short-dwell reference chain (8-site benchmarks).
pub const REFERENCE_SEED: u64 = 97;

/// Seed of the smoke chain (integration and determinism tests).
pub const SMOKE_SEED: u64 = 55;

/// The short-dwell reference chain: `sites` warehouses in a fanout-2 DAG,
/// seed [`REFERENCE_SEED`], 60 s transit, shelf dwells of 60–180 s and a
/// pallet injected every 120 s, so cases clear their shelves quickly and
/// objects hop sites often.
pub fn short_dwell_chain(
    length_secs: u32,
    sites: u32,
    items_per_case: u32,
    cases_per_pallet: u32,
) -> ChainTrace {
    let mut warehouse = WarehouseConfig::default()
        .with_length(length_secs)
        .with_items_per_case(items_per_case)
        .with_cases_per_pallet(cases_per_pallet)
        .with_seed(REFERENCE_SEED);
    warehouse.shelf_dwell_min = 60;
    warehouse.shelf_dwell_max = 180;
    warehouse.pallet_injection_interval = 120;
    SupplyChainSimulator::new(ChainConfig {
        warehouse,
        num_warehouses: sites,
        transit_secs: 60,
        fanout: 2,
    })
    .generate()
}

/// The smoke chain: `sites` warehouses, seed [`SMOKE_SEED`], 4 items per
/// case, 2 cases per pallet, 90 s transit, fanout 2 — small enough for
/// debug-profile test runs.
pub fn smoke_chain(length_secs: u32, sites: u32, anomaly_interval: Option<u32>) -> ChainTrace {
    let mut warehouse = WarehouseConfig::default()
        .with_length(length_secs)
        .with_items_per_case(4)
        .with_cases_per_pallet(2)
        .with_seed(SMOKE_SEED);
    warehouse.anomaly_interval = anomaly_interval;
    SupplyChainSimulator::new(ChainConfig {
        warehouse,
        num_warehouses: sites,
        transit_secs: 90,
        fanout: 2,
    })
    .generate()
}

/// The parameterized lossy-network plan: transmission losses, ack losses and
/// per-link partition windows, with every other fault family disabled. This
/// is the single constructor behind the `degraded` experiment's loss sweep
/// and the transport-reliability tests — call sites pass knobs instead of
/// re-assembling a [`FaultPlanConfig`] by hand.
pub fn lossy_network_plan(
    seed: u64,
    num_sites: u16,
    horizon_secs: u32,
    loss_probability: f64,
    ack_loss_probability: f64,
    partition_probability: f64,
    partition_max_secs: u32,
) -> FaultPlan {
    FaultPlan::generate(&FaultPlanConfig {
        loss_probability,
        ack_loss_probability,
        partition_probability,
        partition_max_secs,
        ..FaultPlanConfig::quiet(seed, num_sites, horizon_secs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_network_plan_matches_the_hand_assembled_config() {
        let preset = lossy_network_plan(13, 4, 3600, 0.25, 0.1, 0.3, 900);
        let by_hand = FaultPlan::generate(&FaultPlanConfig {
            loss_probability: 0.25,
            ack_loss_probability: 0.1,
            partition_probability: 0.3,
            partition_max_secs: 900,
            ..FaultPlanConfig::quiet(13, 4, 3600)
        });
        assert_eq!(preset, by_hand);
        assert!(preset.has_transport_faults());
        assert!(
            !lossy_network_plan(13, 4, 3600, 0.0, 0.0, 0.0, 0).has_transport_faults(),
            "all-zero knobs give the quiet plan"
        );
    }

    #[test]
    fn presets_are_deterministic() {
        let a = smoke_chain(600, 3, None);
        let b = smoke_chain(600, 3, None);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.sites.len(), 3);
        let c = short_dwell_chain(600, 4, 4, 2);
        let d = short_dwell_chain(600, 4, 4, 2);
        assert_eq!(c.transfers, d.transfers);
        assert_eq!(c.sites.len(), 4);
    }

    #[test]
    fn short_dwell_chain_produces_cross_site_traffic() {
        let chain = short_dwell_chain(1500, 4, 4, 2);
        assert!(
            !chain.transfers.is_empty(),
            "the reference chain must move objects between sites"
        );
    }
}
