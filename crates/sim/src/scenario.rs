//! The three-candidate-container scenario of Figure 4.
//!
//! One object starts at the entry door at time 0, is scanned on the conveyor
//! belt around time 100 and placed on a shelf at time 150. Three candidate
//! containers were co-located with it at the entry door:
//!
//! * **R** — the real container, which travels with the object throughout;
//! * **NRC** — a false container that is co-located at the door and on the
//!   shelf but *not* at the belt;
//! * **NRNC** — a false container that is not co-located after the door.
//!
//! The paper uses this scenario to motivate critical-region history
//! truncation: the belt reading around time 100 is the most informative
//! observation, because it separates R from both false candidates.

use crate::config::WarehouseConfig;
use crate::generate::{generate_readings, TagTrajectory};
use crate::layout::WarehouseLayout;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{
    ContainmentMap, ContainmentTimeline, Epoch, GroundTruth, TagId, Trace, TraceMetadata,
};

/// Builder for the Figure-4 scenario.
#[derive(Debug, Clone)]
pub struct EvidenceScenario {
    /// Read rate of all readers.
    pub read_rate: f64,
    /// Trace length (the paper's plot runs to t = 200).
    pub length: u32,
    /// Epoch at which the object (and R) moves to the belt.
    pub belt_time: u32,
    /// Epoch at which the object (and R, and NRC) reaches the shelf.
    pub shelf_time: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvidenceScenario {
    fn default() -> EvidenceScenario {
        EvidenceScenario {
            read_rate: 0.8,
            length: 200,
            belt_time: 100,
            shelf_time: 150,
            seed: 4,
        }
    }
}

/// The tags participating in the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioTags {
    /// The tracked object.
    pub object: TagId,
    /// The real container.
    pub real: TagId,
    /// The "not real, co-located again" container (door + shelf, not belt).
    pub nrc: TagId,
    /// The "not real, not co-located" container (door only).
    pub nrnc: TagId,
}

impl EvidenceScenario {
    /// Generate the scenario trace and return it together with the
    /// participating tags.
    pub fn generate(&self) -> (Trace, ScenarioTags) {
        assert!(self.belt_time < self.shelf_time && self.shelf_time < self.length);
        let config = WarehouseConfig {
            read_rate: self.read_rate,
            overlap_rate: 0.0,
            num_shelves: 2,
            length_secs: self.length,
            ..Default::default()
        };
        let layout = WarehouseLayout::new(&config);
        let horizon = Epoch(self.length);
        let entry = layout.entry();
        let belt = layout.belt();
        let shelf0 = layout.shelf(0);
        let shelf1 = layout.shelf(1);

        let tags = ScenarioTags {
            object: TagId::item(0),
            real: TagId::case(0),
            nrc: TagId::case(1),
            nrnc: TagId::case(2),
        };

        let t0 = Epoch(0);
        let t_belt = Epoch(self.belt_time);
        let t_shelf = Epoch(self.shelf_time);

        let trajectories = vec![
            // The object and its real container share the same path.
            TagTrajectory {
                tag: tags.object,
                segments: vec![(t0, entry), (t_belt, belt), (t_shelf, shelf0)],
                departure: None,
            },
            TagTrajectory {
                tag: tags.real,
                segments: vec![(t0, entry), (t_belt, belt), (t_shelf, shelf0)],
                departure: None,
            },
            // NRC skips the belt but ends up on the same shelf.
            TagTrajectory {
                tag: tags.nrc,
                segments: vec![(t0, entry), (t_belt, shelf1), (t_shelf, shelf0)],
                departure: None,
            },
            // NRNC diverges after the door.
            TagTrajectory {
                tag: tags.nrnc,
                segments: vec![(t0, entry), (t_belt, shelf1)],
                departure: None,
            },
        ];

        let rates = layout.read_rate_table(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let readings = generate_readings(&layout, &rates, &trajectories, horizon, &mut rng);

        let mut containment = ContainmentMap::new();
        containment.set(tags.object, tags.real);
        let mut truth = GroundTruth::new(ContainmentTimeline::new(containment));
        crate::generate::record_ground_truth(&mut truth, &trajectories);

        let trace = Trace {
            readings,
            truth,
            read_rates: rates,
            meta: TraceMetadata::stable(
                "figure4-evidence",
                self.read_rate,
                0.0,
                self.length,
                config.num_locations(),
            ),
        };
        (trace, tags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_expected_colocation_pattern() {
        let (trace, tags) = EvidenceScenario::default().generate();
        let truth = &trace.truth;
        // At the door, all four tags share a location.
        let door = truth.location_at(tags.object, Epoch(10)).unwrap();
        for t in [tags.real, tags.nrc, tags.nrnc] {
            assert_eq!(truth.location_at(t, Epoch(10)), Some(door));
        }
        // On the belt only the real container travels with the object.
        let belt = truth.location_at(tags.object, Epoch(120)).unwrap();
        assert_eq!(truth.location_at(tags.real, Epoch(120)), Some(belt));
        assert_ne!(truth.location_at(tags.nrc, Epoch(120)), Some(belt));
        assert_ne!(truth.location_at(tags.nrnc, Epoch(120)), Some(belt));
        // On the shelf, NRC is co-located again but NRNC is not.
        let shelf = truth.location_at(tags.object, Epoch(180)).unwrap();
        assert_eq!(truth.location_at(tags.real, Epoch(180)), Some(shelf));
        assert_eq!(truth.location_at(tags.nrc, Epoch(180)), Some(shelf));
        assert_ne!(truth.location_at(tags.nrnc, Epoch(180)), Some(shelf));
        // Ground-truth containment points at the real container.
        assert_eq!(truth.container_at(tags.object, Epoch(0)), Some(tags.real));
    }

    #[test]
    fn scenario_readings_cover_all_tags() {
        let (trace, tags) = EvidenceScenario::default().generate();
        let observed = trace.readings.tags();
        for t in [tags.object, tags.real, tags.nrc, tags.nrnc] {
            assert!(
                observed.contains(&t),
                "tag {t} should be read at least once"
            );
        }
    }

    #[test]
    #[should_panic]
    fn inconsistent_times_panic() {
        let _ = EvidenceScenario {
            belt_time: 180,
            shelf_time: 150,
            ..Default::default()
        }
        .generate();
    }
}
