//! Synthetic temperature sensor streams for the hybrid queries of Section 2.
//!
//! Query 1 joins the RFID event stream against a temperature stream
//! partitioned by sensor (one sensor per reader location), and raises an
//! alert when a temperature-sensitive product sits outside a freezer at room
//! temperature for six hours. The paper does not describe the sensors beyond
//! that, so the model here is deliberately simple: every location has a base
//! temperature (freezer locations are cold, the rest are at room
//! temperature) plus small periodic and random fluctuations.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{Epoch, LocationId, SensorReading};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Temperature model for a deployment: which locations are freezers and what
/// the ambient temperature is elsewhere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemperatureModel {
    freezer_locations: BTreeSet<LocationId>,
    /// Mean temperature of non-freezer locations (°C).
    pub room_temp: f64,
    /// Mean temperature of freezer locations (°C).
    pub freezer_temp: f64,
    /// Half-amplitude of the random fluctuation added to every reading.
    pub jitter: f64,
    /// Seconds between two consecutive readings of the same sensor.
    pub period_secs: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TemperatureModel {
    /// Create a model where the listed locations are freezers, all others
    /// are at 21 °C room temperature, freezers at −18 °C, ±0.5 °C jitter and
    /// one reading per sensor per 10 seconds.
    pub fn new(freezer_locations: impl IntoIterator<Item = LocationId>) -> TemperatureModel {
        TemperatureModel {
            freezer_locations: freezer_locations.into_iter().collect(),
            room_temp: 21.0,
            freezer_temp: -18.0,
            jitter: 0.5,
            period_secs: 10,
            seed: 17,
        }
    }

    /// Whether a location is a freezer.
    pub fn is_freezer(&self, loc: LocationId) -> bool {
        self.freezer_locations.contains(&loc)
    }

    /// Mean temperature of a location.
    pub fn mean_temp(&self, loc: LocationId) -> f64 {
        if self.is_freezer(loc) {
            self.freezer_temp
        } else {
            self.room_temp
        }
    }

    /// Generate the temperature stream of every location in `0..num_locations`
    /// over `[0, horizon)`, ordered by time then location.
    pub fn generate(&self, num_locations: usize, horizon: Epoch) -> Vec<SensorReading> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut readings = Vec::new();
        let period = self.period_secs.max(1);
        let mut t = 0u32;
        while t < horizon.0 {
            for l in 0..num_locations {
                let loc = LocationId(l as u16);
                let noise = rng.gen_range(-self.jitter..=self.jitter);
                readings.push(SensorReading::new(
                    Epoch(t),
                    loc,
                    self.mean_temp(loc) + noise,
                ));
            }
            t += period;
        }
        readings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freezer_locations_read_cold_others_warm() {
        let model = TemperatureModel::new([LocationId(2)]);
        let readings = model.generate(4, Epoch(100));
        assert!(!readings.is_empty());
        for r in &readings {
            if r.location == LocationId(2) {
                assert!(r.value < 0.0, "freezer reads below zero");
            } else {
                assert!(r.value > 15.0, "room locations read warm");
            }
        }
    }

    #[test]
    fn stream_covers_all_locations_periodically() {
        let model = TemperatureModel::new([]);
        let readings = model.generate(3, Epoch(50));
        // 5 sample times (0,10,20,30,40) x 3 locations
        assert_eq!(readings.len(), 15);
        assert!(readings.iter().any(|r| r.location == LocationId(0)));
        assert!(readings.iter().any(|r| r.location == LocationId(2)));
        assert!(readings.iter().all(|r| r.time.0 % 10 == 0));
    }

    #[test]
    fn generation_is_deterministic() {
        let model = TemperatureModel::new([LocationId(0)]);
        let a = model.generate(2, Epoch(100));
        let b = model.generate(2, Epoch(100));
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| (x.value - y.value).abs() < 1e-12));
    }

    #[test]
    fn is_freezer_and_mean_temp() {
        let model = TemperatureModel::new([LocationId(1)]);
        assert!(model.is_freezer(LocationId(1)));
        assert!(!model.is_freezer(LocationId(0)));
        assert!(model.mean_temp(LocationId(1)) < model.mean_temp(LocationId(0)));
    }
}
