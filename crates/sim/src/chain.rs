//! Multi-warehouse supply-chain simulator (Section 5.3 and Appendix C.1).
//!
//! `N` warehouses are arranged in a single-source DAG. Pallets of cases are
//! injected at the source, travel through a sequence of warehouses (with a
//! transit delay between sites, dispatched round-robin to each warehouse's
//! successors) and every warehouse independently produces noisy readings from
//! its own readers. Anomalies move items between co-located cases at any
//! site. The output is one [`Trace`] per site plus the list of
//! [`ObjectTransfer`]s — the events the distributed processing layer reacts
//! to by migrating inference and query state.

use crate::anomaly::initial_containment;
use crate::config::ChainConfig;
use crate::generate::{
    case_trajectory, generate_readings, item_trajectory, record_ground_truth, TagTrajectory,
};
use crate::layout::WarehouseLayout;
use crate::movement::{build_journeys, CaseJourney, PalletArrival, TagSerials};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{
    ContainmentChange, ContainmentTimeline, Epoch, GroundTruth, SiteId, TagId, Trace, TraceMetadata,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An object (case or item) leaving one site for another: the trigger for
/// state migration in the distributed system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectTransfer {
    /// The migrating tag.
    pub tag: TagId,
    /// Site the object departs from.
    pub from_site: SiteId,
    /// Site the object will arrive at.
    pub to_site: SiteId,
    /// Epoch at which the object is scanned at the exit of `from_site`.
    pub depart: Epoch,
    /// Epoch at which the object arrives at `to_site`.
    pub arrive: Epoch,
}

/// Output of the supply-chain simulator.
#[derive(Debug, Clone)]
pub struct ChainTrace {
    /// One trace per site, indexed by `SiteId().0 as usize`.
    pub sites: Vec<Trace>,
    /// All inter-site object transfers in departure-time order.
    pub transfers: Vec<ObjectTransfer>,
    /// The global true containment timeline (shared by all sites).
    pub containment: ContainmentTimeline,
}

impl ChainTrace {
    /// Total number of raw readings across all sites.
    pub fn total_readings(&self) -> usize {
        self.sites.iter().map(|t| t.readings.len()).sum()
    }

    /// All distinct objects (items) in the chain.
    pub fn objects(&self) -> Vec<TagId> {
        let mut objects: Vec<TagId> = self.sites.iter().flat_map(|t| t.objects()).collect();
        objects.sort_unstable();
        objects.dedup();
        objects
    }
}

/// One case's visit to one site, used internally while scheduling the chain.
#[derive(Debug, Clone)]
struct SiteVisit {
    site: SiteId,
    journey: CaseJourney,
}

/// Simulator of an `N`-warehouse supply chain.
#[derive(Debug, Clone)]
pub struct SupplyChainSimulator {
    config: ChainConfig,
}

impl SupplyChainSimulator {
    /// Create a simulator from a chain configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: ChainConfig) -> SupplyChainSimulator {
        if let Err(msg) = config.validate() {
            panic!("invalid chain configuration: {msg}");
        }
        SupplyChainSimulator { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Generate per-site traces, transfers, and the global containment truth.
    pub fn generate(&self) -> ChainTrace {
        let wh = &self.config.warehouse;
        let horizon = Epoch(wh.length_secs);
        let layout = WarehouseLayout::new(wh);
        let num_sites = self.config.num_warehouses as usize;

        // 1. Route pallets through the DAG, building one set of case
        //    journeys per site. Warehouses are processed in index order,
        //    which is a topological order of the DAG.
        let mut serials = TagSerials::new();
        let mut arrivals_per_site: Vec<Vec<PalletArrival>> = vec![Vec::new(); num_sites];
        arrivals_per_site[0] = crate::movement::source_arrivals(wh, &mut serials);
        let mut visits: Vec<SiteVisit> = Vec::new();
        let mut transfers: Vec<ObjectTransfer> = Vec::new();
        let mut rr_cursor: Vec<usize> = vec![0; num_sites];

        for w in 0..num_sites {
            if arrivals_per_site[w].is_empty() {
                continue;
            }
            let arrivals = arrivals_per_site[w].clone();
            let mut rng = ChaCha8Rng::seed_from_u64(wh.seed ^ (w as u64) << 17);
            let journeys = build_journeys(wh, &layout, &arrivals, &mut rng);
            // Group journeys by pallet to learn when each pallet departs.
            let mut per_pallet: BTreeMap<TagId, Vec<&CaseJourney>> = BTreeMap::new();
            for j in &journeys {
                per_pallet.entry(j.pallet).or_default().push(j);
            }
            let successors = self.config.successors(w as u32);
            for (pallet, cases) in &per_pallet {
                let departure = cases
                    .iter()
                    .map(|j| j.departure)
                    .collect::<Option<Vec<_>>>();
                let Some(departure) = departure else { continue };
                let depart = departure.into_iter().max().unwrap();
                if successors.is_empty() {
                    continue;
                }
                let next = successors[rr_cursor[w] % successors.len()] as usize;
                rr_cursor[w] += 1;
                let arrive = depart.plus(self.config.transit_secs);
                if arrive >= horizon {
                    continue;
                }
                arrivals_per_site[next].push(PalletArrival {
                    pallet: *pallet,
                    arrival: arrive,
                    cases: cases.iter().map(|j| (j.case, j.items.clone())).collect(),
                });
                for j in cases {
                    transfers.push(ObjectTransfer {
                        tag: j.case,
                        from_site: SiteId(w as u16),
                        to_site: SiteId(next as u16),
                        depart,
                        arrive,
                    });
                }
            }
            visits.extend(journeys.into_iter().map(|journey| SiteVisit {
                site: SiteId(w as u16),
                journey,
            }));
            // keep arrivals sorted by time for the next site
            for site_arrivals in arrivals_per_site.iter_mut() {
                site_arrivals.sort_by_key(|p| p.arrival);
            }
        }

        // 2. Global containment: initial packing (from the source journeys —
        //    packing never changes across sites unless an anomaly fires) plus
        //    anomalies injected in global time order across all sites.
        let source_journeys: Vec<CaseJourney> = visits
            .iter()
            .filter(|v| v.site == SiteId(0))
            .map(|v| v.journey.clone())
            .collect();
        let mut timeline = ContainmentTimeline::new(initial_containment(&source_journeys));
        if let Some(interval) = wh.anomaly_interval {
            let mut rng = ChaCha8Rng::seed_from_u64(wh.seed ^ 0xa11);
            let mut t = interval;
            while t < horizon.0 {
                let now = Epoch(t);
                for w in 0..num_sites {
                    let shelved: Vec<&CaseJourney> = visits
                        .iter()
                        .filter(|v| v.site == SiteId(w as u16))
                        .map(|v| &v.journey)
                        .filter(|j| {
                            j.location_at(now)
                                .map(|loc| layout.is_shelf(loc))
                                .unwrap_or(false)
                        })
                        .collect();
                    if shelved.len() < 2 {
                        continue;
                    }
                    let current = timeline.at(now);
                    let candidates: Vec<(TagId, TagId)> = shelved
                        .iter()
                        .flat_map(|j| {
                            current
                                .objects_in(j.case)
                                .into_iter()
                                .map(move |item| (item, j.case))
                        })
                        .collect();
                    let Some(&(item, old_case)) = candidates.choose(&mut rng) else {
                        continue;
                    };
                    let targets: Vec<TagId> = shelved
                        .iter()
                        .map(|j| j.case)
                        .filter(|c| *c != old_case)
                        .collect();
                    if let Some(&new_case) = targets.choose(&mut rng) {
                        timeline.record(ContainmentChange {
                            time: now,
                            object: item,
                            old_container: Some(old_case),
                            new_container: Some(new_case),
                        });
                    }
                }
                t += interval;
            }
        }

        // 3. Item transfers: items travel with whatever case contains them at
        //    the case's departure time.
        let mut item_transfers = Vec::new();
        for tr in &transfers {
            let case = tr.tag;
            let contained = timeline.at(tr.depart);
            for item in contained.objects_in(case) {
                item_transfers.push(ObjectTransfer { tag: item, ..*tr });
            }
        }
        transfers.extend(item_transfers);
        transfers.sort_by_key(|t| (t.depart, t.tag));

        // 4. Per-site trajectories, ground truth, and readings.
        let mut sites = Vec::with_capacity(num_sites);
        for w in 0..num_sites {
            let site_journeys: Vec<&CaseJourney> = visits
                .iter()
                .filter(|v| v.site == SiteId(w as u16))
                .map(|v| &v.journey)
                .collect();
            let by_case: BTreeMap<TagId, &CaseJourney> =
                site_journeys.iter().map(|j| (j.case, *j)).collect();
            let mut trajectories: Vec<TagTrajectory> =
                site_journeys.iter().map(|j| case_trajectory(j)).collect();
            let mut items: Vec<TagId> = site_journeys
                .iter()
                .flat_map(|j| j.items.iter().copied())
                .collect();
            // Items that were moved into a case of this site by an anomaly.
            items.extend(
                timeline
                    .changes()
                    .iter()
                    .filter(|c| {
                        c.new_container
                            .map(|nc| by_case.contains_key(&nc))
                            .unwrap_or(false)
                    })
                    .map(|c| c.object),
            );
            items.sort_unstable();
            items.dedup();
            for item in items {
                let traj = item_trajectory(item, &timeline, &by_case, horizon);
                if !traj.segments.is_empty() {
                    trajectories.push(traj);
                }
            }
            let rates = layout.read_rate_table(wh);
            let mut truth = GroundTruth::new(timeline.clone());
            record_ground_truth(&mut truth, &trajectories);
            let mut rng = ChaCha8Rng::seed_from_u64(wh.seed ^ 0xfeed ^ ((w as u64) << 8));
            let readings = generate_readings(&layout, &rates, &trajectories, horizon, &mut rng);
            sites.push(Trace {
                readings,
                truth,
                read_rates: rates,
                meta: TraceMetadata {
                    name: format!("site{w}"),
                    read_rate: wh.read_rate,
                    overlap_rate: wh.overlap_rate,
                    length: wh.length_secs,
                    anomaly_interval: wh.anomaly_interval,
                    num_locations: wh.num_locations(),
                },
            });
        }

        ChainTrace {
            sites,
            transfers,
            containment: timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarehouseConfig;

    fn small_chain(length: u32, warehouses: u32) -> ChainConfig {
        ChainConfig {
            warehouse: WarehouseConfig::default()
                .with_length(length)
                .with_items_per_case(4)
                .with_cases_per_pallet(2)
                .with_seed(13),
            num_warehouses: warehouses,
            transit_secs: 60,
            fanout: 2,
        }
    }

    #[test]
    fn chain_produces_one_trace_per_site() {
        let chain = SupplyChainSimulator::new(small_chain(1800, 3)).generate();
        assert_eq!(chain.sites.len(), 3);
        assert!(!chain.sites[0].readings.is_empty());
        assert!(chain.total_readings() >= chain.sites[0].readings.len());
        assert!(!chain.objects().is_empty());
    }

    #[test]
    fn transfers_reference_valid_sites_and_follow_transit_delay() {
        let config = small_chain(3000, 3);
        let chain = SupplyChainSimulator::new(config.clone()).generate();
        assert!(
            !chain.transfers.is_empty(),
            "long trace should see transfers"
        );
        for tr in &chain.transfers {
            assert!((tr.to_site.0 as u32) < config.num_warehouses);
            assert!((tr.from_site.0 as u32) < config.num_warehouses);
            assert_ne!(tr.from_site, tr.to_site);
            assert_eq!(tr.arrive.since(tr.depart), config.transit_secs);
        }
        // transfers are sorted by departure time
        assert!(chain
            .transfers
            .windows(2)
            .all(|w| w[0].depart <= w[1].depart));
    }

    #[test]
    fn transferred_cases_appear_in_destination_site_readings() {
        let chain = SupplyChainSimulator::new(small_chain(3000, 2)).generate();
        let case_transfer = chain
            .transfers
            .iter()
            .find(|t| t.tag.is_container())
            .expect("at least one case transfer");
        let dest = &chain.sites[case_transfer.to_site.0 as usize];
        assert!(
            dest.readings.tags().contains(&case_transfer.tag),
            "the destination site should read the transferred case"
        );
        // and the destination ground truth knows where it is after arrival
        assert!(dest
            .truth
            .location_at(case_transfer.tag, case_transfer.arrive.plus(5))
            .is_some());
    }

    #[test]
    fn items_transfer_with_their_cases() {
        let chain = SupplyChainSimulator::new(small_chain(3000, 2)).generate();
        let case_transfer = chain
            .transfers
            .iter()
            .find(|t| t.tag.is_container())
            .unwrap();
        let contained = chain.containment.at(case_transfer.depart);
        for item in contained.objects_in(case_transfer.tag) {
            assert!(
                chain
                    .transfers
                    .iter()
                    .any(|t| t.tag == item && t.depart == case_transfer.depart),
                "item {item} should transfer with its case"
            );
        }
    }

    #[test]
    fn anomalies_fire_across_the_chain() {
        let mut config = small_chain(2400, 2);
        config.warehouse.anomaly_interval = Some(60);
        let chain = SupplyChainSimulator::new(config).generate();
        assert!(!chain.containment.changes().is_empty());
    }

    #[test]
    fn single_warehouse_chain_has_no_transfers() {
        let chain = SupplyChainSimulator::new(small_chain(1200, 1)).generate();
        assert!(chain.transfers.is_empty());
        assert_eq!(chain.sites.len(), 1);
    }
}
