//! Simulation parameters, mirroring Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// How shelves are scanned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShelfScanMode {
    /// One static reader per shelf, interrogating every `period_secs`
    /// seconds (Table 2: every 10 seconds).
    Static {
        /// Interrogation period of each shelf reader, in seconds.
        period_secs: u32,
    },
    /// A mobile reader sweeps an aisle of shelves, spending `dwell_secs` at
    /// each shelf and reading every second while there (Section 5.3's
    /// scalability variant: 90 shelves per aisle, 10 s per shelf).
    Mobile {
        /// Seconds the mobile reader spends in front of each shelf.
        dwell_secs: u32,
        /// Number of shelves covered by one mobile reader (one aisle).
        shelves_per_aisle: u32,
    },
}

impl ShelfScanMode {
    /// The default static-shelf-reader mode of Table 2.
    pub fn default_static() -> ShelfScanMode {
        ShelfScanMode::Static { period_secs: 10 }
    }
}

/// Parameters of a single simulated warehouse (one site), following Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseConfig {
    /// Trace length in seconds.
    pub length_secs: u32,
    /// Seconds between two pallet injections at the entry door (Table 2:
    /// one every 60 seconds).
    pub pallet_injection_interval: u32,
    /// Cases per pallet (Table 2: 5).
    pub cases_per_pallet: u32,
    /// Items per case (Table 2: 20).
    pub items_per_case: u32,
    /// Main read rate RR of every reader for tags at its own location.
    pub read_rate: f64,
    /// Overlap rate OR: probability that a shelf reader reads a tag on an
    /// adjacent shelf.
    pub overlap_rate: f64,
    /// Background probability that any reader detects a tag that is neither
    /// at its location nor on an adjacent shelf (radio-frequency stray
    /// reads; essentially zero).
    pub background_rate: f64,
    /// Interrogation period of non-shelf readers (entry, belt, exit) in
    /// seconds (Table 2: 1).
    pub non_shelf_period: u32,
    /// How shelves are scanned.
    pub shelf_scan: ShelfScanMode,
    /// Number of shelf locations in the warehouse.
    pub num_shelves: u32,
    /// Seconds a newly arrived pallet (and its cases) spends at the entry
    /// door before unpacking.
    pub entry_dwell: u32,
    /// Seconds each case spends on the conveyor belt (cases go one at a
    /// time).
    pub belt_dwell: u32,
    /// Seconds a case spends on its shelf before being repacked. The actual
    /// dwell is sampled uniformly from `[shelf_dwell_min, shelf_dwell_max]`.
    pub shelf_dwell_min: u32,
    /// Upper bound of the shelf dwell.
    pub shelf_dwell_max: u32,
    /// Seconds an assembled pallet spends at the exit door before departing.
    pub exit_dwell: u32,
    /// Interval between injected containment anomalies in seconds
    /// (`None` = stable containment). Table 2: FA between 10 and 120 s.
    pub anomaly_interval: Option<u32>,
    /// RNG seed; every derived stream (readings, dwells, anomalies) is
    /// deterministic given this seed.
    pub seed: u64,
}

impl Default for WarehouseConfig {
    fn default() -> WarehouseConfig {
        WarehouseConfig {
            length_secs: 1500,
            pallet_injection_interval: 60,
            cases_per_pallet: 5,
            items_per_case: 20,
            read_rate: 0.8,
            overlap_rate: 0.5,
            background_rate: 1e-4,
            non_shelf_period: 1,
            shelf_scan: ShelfScanMode::default_static(),
            num_shelves: 8,
            entry_dwell: 30,
            belt_dwell: 10,
            shelf_dwell_min: 300,
            shelf_dwell_max: 900,
            exit_dwell: 30,
            anomaly_interval: None,
            seed: 7,
        }
    }
}

impl WarehouseConfig {
    /// Builder-style setter for the trace length.
    pub fn with_length(mut self, secs: u32) -> Self {
        self.length_secs = secs;
        self
    }

    /// Builder-style setter for the read rate RR.
    pub fn with_read_rate(mut self, rr: f64) -> Self {
        self.read_rate = rr;
        self
    }

    /// Builder-style setter for the overlap rate OR.
    pub fn with_overlap_rate(mut self, or: f64) -> Self {
        self.overlap_rate = or;
        self
    }

    /// Builder-style setter for the anomaly interval FA.
    pub fn with_anomaly_interval(mut self, secs: u32) -> Self {
        self.anomaly_interval = Some(secs);
        self
    }

    /// Builder-style setter for the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the number of items per case.
    pub fn with_items_per_case(mut self, n: u32) -> Self {
        self.items_per_case = n;
        self
    }

    /// Builder-style setter for the number of cases per pallet.
    pub fn with_cases_per_pallet(mut self, n: u32) -> Self {
        self.cases_per_pallet = n;
        self
    }

    /// Number of reader locations in this warehouse: entry + belt + shelves
    /// + exit.
    pub fn num_locations(&self) -> usize {
        2 + self.num_shelves as usize + 1
    }

    /// Expected number of pallets injected over the trace (one injection at
    /// every multiple of the injection interval strictly before the horizon).
    pub fn num_pallets(&self) -> u32 {
        self.length_secs.div_ceil(self.pallet_injection_interval)
    }

    /// Validate parameter sanity, returning a description of the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.read_rate) {
            return Err(format!(
                "read_rate must be in [0,1], got {}",
                self.read_rate
            ));
        }
        if !(0.0..=1.0).contains(&self.overlap_rate) {
            return Err(format!(
                "overlap_rate must be in [0,1], got {}",
                self.overlap_rate
            ));
        }
        if self.cases_per_pallet == 0 || self.items_per_case == 0 {
            return Err("cases_per_pallet and items_per_case must be positive".into());
        }
        if self.num_shelves == 0 {
            return Err("num_shelves must be positive".into());
        }
        if self.shelf_dwell_max < self.shelf_dwell_min {
            return Err("shelf_dwell_max must be >= shelf_dwell_min".into());
        }
        if self.pallet_injection_interval == 0 || self.length_secs == 0 {
            return Err("pallet_injection_interval and length_secs must be positive".into());
        }
        Ok(())
    }
}

/// Parameters of a multi-warehouse supply chain (Section 5.3): `N` warehouses
/// arranged in a single-source DAG; pallets are injected at the source and
/// move through a sequence of warehouses, dispatched round-robin to the
/// successors of each node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Per-warehouse configuration (shared by all warehouses).
    pub warehouse: WarehouseConfig,
    /// Number of warehouses N (Table 2: 1–10).
    pub num_warehouses: u32,
    /// Transit time between two warehouses in seconds.
    pub transit_secs: u32,
    /// Number of downstream warehouses each warehouse dispatches to
    /// (successors in the DAG); the chain is generated in levels.
    pub fanout: u32,
}

impl Default for ChainConfig {
    fn default() -> ChainConfig {
        ChainConfig {
            warehouse: WarehouseConfig::default(),
            num_warehouses: 3,
            transit_secs: 120,
            fanout: 2,
        }
    }
}

impl ChainConfig {
    /// Successors of warehouse `w` in the single-source DAG.
    ///
    /// Warehouses are numbered in breadth-first order from the source (0).
    /// Warehouse `w` dispatches to warehouses `w*fanout + 1 ..= w*fanout +
    /// fanout` that exist; a warehouse with no successors is a final
    /// destination.
    pub fn successors(&self, w: u32) -> Vec<u32> {
        (1..=self.fanout)
            .map(|k| w * self.fanout + k)
            .filter(|&s| s < self.num_warehouses)
            .collect()
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        self.warehouse.validate()?;
        if self.num_warehouses == 0 {
            return Err("num_warehouses must be positive".into());
        }
        if self.fanout == 0 {
            return Err("fanout must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_table2() {
        let c = WarehouseConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.pallet_injection_interval, 60);
        assert_eq!(c.cases_per_pallet, 5);
        assert_eq!(c.items_per_case, 20);
        assert_eq!(c.non_shelf_period, 1);
        assert_eq!(c.shelf_scan, ShelfScanMode::Static { period_secs: 10 });
        assert_eq!(c.num_locations(), 11);
    }

    #[test]
    fn builders_set_fields() {
        let c = WarehouseConfig::default()
            .with_length(600)
            .with_read_rate(0.6)
            .with_overlap_rate(0.2)
            .with_anomaly_interval(20)
            .with_seed(99)
            .with_items_per_case(5)
            .with_cases_per_pallet(4);
        assert_eq!(c.length_secs, 600);
        assert!((c.read_rate - 0.6).abs() < 1e-12);
        assert!((c.overlap_rate - 0.2).abs() < 1e-12);
        assert_eq!(c.anomaly_interval, Some(20));
        assert_eq!(c.seed, 99);
        assert_eq!(c.items_per_case, 5);
        assert_eq!(c.cases_per_pallet, 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(WarehouseConfig {
            read_rate: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WarehouseConfig {
            overlap_rate: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WarehouseConfig {
            items_per_case: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WarehouseConfig {
            num_shelves: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(WarehouseConfig {
            shelf_dwell_min: 100,
            shelf_dwell_max: 50,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ChainConfig {
            num_warehouses: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ChainConfig {
            fanout: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn chain_successors_form_single_source_dag() {
        let chain = ChainConfig {
            num_warehouses: 7,
            fanout: 2,
            ..Default::default()
        };
        assert_eq!(chain.successors(0), vec![1, 2]);
        assert_eq!(chain.successors(1), vec![3, 4]);
        assert_eq!(chain.successors(2), vec![5, 6]);
        assert!(chain.successors(3).is_empty());
        // every non-source warehouse is reachable exactly once (tree)
        let mut reached = [0u32; 7];
        for w in 0..7 {
            for s in chain.successors(w) {
                reached[s as usize] += 1;
            }
        }
        assert_eq!(reached[0], 0);
        assert!(reached[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn num_pallets_counts_injections() {
        let c = WarehouseConfig::default().with_length(600);
        assert_eq!(c.num_pallets(), 10);
        assert_eq!(c.with_length(630).num_pallets(), 11);
    }
}
