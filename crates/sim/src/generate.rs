//! Turning object trajectories into noisy RFID readings.
//!
//! Readings are generated exactly according to the paper's observation model
//! (Section 3.1): in every epoch, each reader independently interrogates
//! every tag and detects a tag at location `a` with probability `pi(r, a)`.
//! The generator exploits the same sparsity as the inference engine — only
//! readers with a non-background detection probability for the tag's current
//! location are sampled — so large traces stay tractable.

use crate::layout::WarehouseLayout;
use crate::movement::CaseJourney;
use rand::Rng;
use rfid_types::{
    ContainmentTimeline, Epoch, GroundTruth, LocationId, RawReading, ReadRateTable, ReadingBatch,
    TagId,
};
use std::collections::BTreeMap;

/// A tag's trajectory: time-ordered `(start, location)` segments plus an
/// optional departure epoch after which the tag is no longer present.
#[derive(Debug, Clone, PartialEq)]
pub struct TagTrajectory {
    /// The tag.
    pub tag: TagId,
    /// Time-ordered `(start epoch, location)` segments.
    pub segments: Vec<(Epoch, LocationId)>,
    /// Exclusive end of the last segment (`None` = present until horizon).
    pub departure: Option<Epoch>,
}

impl TagTrajectory {
    /// The tag's location at epoch `t`.
    pub fn location_at(&self, t: Epoch) -> Option<LocationId> {
        if let Some(dep) = self.departure {
            if t >= dep {
                return None;
            }
        }
        let mut current = None;
        for &(start, loc) in &self.segments {
            if start <= t {
                current = Some(loc);
            } else {
                break;
            }
        }
        current
    }
}

/// Build the trajectory of a case directly from its journey.
pub fn case_trajectory(journey: &CaseJourney) -> TagTrajectory {
    TagTrajectory {
        tag: journey.case,
        segments: journey.segments.clone(),
        departure: journey.departure,
    }
}

/// Build the trajectory of an item: it follows its container, switching
/// containers at every recorded containment change (the physics of the
/// paper's model: an object is always wherever its container is).
///
/// If the item is removed from all containers, it stays at the location where
/// it was removed until the horizon.
pub fn item_trajectory(
    item: TagId,
    timeline: &ContainmentTimeline,
    journeys_by_case: &BTreeMap<TagId, &CaseJourney>,
    horizon: Epoch,
) -> TagTrajectory {
    // Build the item's container as a step function of time.
    let mut container_steps: Vec<(Epoch, Option<TagId>)> =
        vec![(Epoch::ZERO, timeline.initial().container_of(item))];
    for change in timeline.changes_for(item) {
        container_steps.push((change.time, change.new_container));
    }

    let mut segments: Vec<(Epoch, LocationId)> = Vec::new();
    let mut departure: Option<Epoch> = None;
    for (idx, &(step_start, container)) in container_steps.iter().enumerate() {
        let step_end = container_steps
            .get(idx + 1)
            .map(|&(t, _)| t)
            .unwrap_or(horizon);
        match container.and_then(|c| journeys_by_case.get(&c)) {
            Some(journey) => {
                // Copy the container's segments that overlap [step_start, step_end).
                let mut last_before: Option<LocationId> = None;
                for &(seg_start, loc) in &journey.segments {
                    if seg_start < step_start {
                        last_before = Some(loc);
                    } else if seg_start < step_end {
                        segments.push((seg_start.max(step_start), loc));
                    }
                }
                // The container may already have been somewhere when this
                // containment step began.
                if let Some(loc) = last_before {
                    if journey
                        .location_at(step_start)
                        .map(|l| l == loc)
                        .unwrap_or(false)
                        && segments
                            .last()
                            .map(|&(s, _)| s > step_start)
                            .unwrap_or(true)
                    {
                        segments.push((step_start, loc));
                    }
                }
                if idx == container_steps.len() - 1 {
                    departure = journey.departure;
                }
            }
            None => {
                // Removed from all containers: frozen at its last location.
                departure = None;
            }
        }
    }
    segments.sort_by_key(|&(t, _)| t);
    segments.dedup();
    TagTrajectory {
        tag: item,
        segments,
        departure,
    }
}

/// Generate noisy readings for a set of trajectories over `[0, horizon)`.
///
/// For every trajectory segment, only the *effective readers* of the segment
/// location (co-located reader plus overlapping shelf readers) are sampled;
/// background stray reads from all other readers are sampled at a single
/// aggregated Bernoulli per epoch to keep the cost linear.
pub fn generate_readings<R: Rng>(
    layout: &WarehouseLayout,
    rates: &ReadRateTable,
    trajectories: &[TagTrajectory],
    horizon: Epoch,
    rng: &mut R,
) -> ReadingBatch {
    let mut readings = Vec::new();
    for traj in trajectories {
        for (idx, &(seg_start, loc)) in traj.segments.iter().enumerate() {
            let seg_end = traj
                .segments
                .get(idx + 1)
                .map(|&(t, _)| t)
                .or(traj.departure)
                .unwrap_or(horizon)
                .min(horizon);
            if seg_end <= seg_start {
                continue;
            }
            for reader_loc in layout.effective_readers(loc) {
                let p = rates.rate(reader_loc, loc);
                if p <= 1e-9 {
                    continue;
                }
                for t in seg_start.0..seg_end.0 {
                    let epoch = Epoch(t);
                    if !layout.interrogates(reader_loc, epoch) {
                        continue;
                    }
                    if rng.gen_bool(p) {
                        readings.push(RawReading::new(epoch, traj.tag, reader_loc.reader()));
                    }
                }
            }
        }
    }
    ReadingBatch::from_readings(readings)
}

/// Record every trajectory into a ground-truth structure that already carries
/// the containment timeline.
pub fn record_ground_truth(truth: &mut GroundTruth, trajectories: &[TagTrajectory]) {
    for traj in trajectories {
        for &(start, loc) in &traj.segments {
            truth.record_location(traj.tag, start, loc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::{initial_containment, inject_anomalies};
    use crate::config::WarehouseConfig;
    use crate::movement::{build_journeys, source_arrivals, TagSerials};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rfid_types::ContainmentChange;

    fn setup(len: u32) -> (WarehouseConfig, WarehouseLayout, Vec<CaseJourney>) {
        let config = WarehouseConfig::default().with_length(len).with_seed(2);
        let layout = WarehouseLayout::new(&config);
        let mut serials = TagSerials::new();
        let arrivals = source_arrivals(&config, &mut serials);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let journeys = build_journeys(&config, &layout, &arrivals, &mut rng);
        (config, layout, journeys)
    }

    #[test]
    fn item_trajectory_follows_its_case_when_stable() {
        let (config, _layout, journeys) = setup(1200);
        let timeline = ContainmentTimeline::new(initial_containment(&journeys));
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        let j = &journeys[0];
        let item = j.items[0];
        let traj = item_trajectory(item, &timeline, &by_case, Epoch(config.length_secs));
        for t in (0..config.length_secs).step_by(7) {
            assert_eq!(traj.location_at(Epoch(t)), j.location_at(Epoch(t)));
        }
    }

    #[test]
    fn item_trajectory_switches_case_after_change() {
        let (config, layout, journeys) = setup(2400);
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        // Move item 0 of case 0 to case 1 once both are on shelves.
        let old = &journeys[0];
        let new = &journeys[1];
        let (old_shelf_start, _) = old.shelf_interval(&layout).unwrap();
        let (new_shelf_start, new_shelf_end) = new.shelf_interval(&layout).unwrap();
        let change_time = old_shelf_start.max(new_shelf_start).plus(5);
        assert!(
            change_time < new_shelf_end,
            "test setup: both cases shelved"
        );
        let item = old.items[0];
        let mut timeline = ContainmentTimeline::new(initial_containment(&journeys));
        timeline.record(ContainmentChange {
            time: change_time,
            object: item,
            old_container: Some(old.case),
            new_container: Some(new.case),
        });
        let traj = item_trajectory(item, &timeline, &by_case, Epoch(config.length_secs));
        assert_eq!(
            traj.location_at(change_time.minus(2)),
            old.location_at(change_time.minus(2))
        );
        assert_eq!(
            traj.location_at(change_time.plus(2)),
            new.location_at(change_time.plus(2)),
            "after the change the item travels with the new case"
        );
    }

    #[test]
    fn readings_respect_presence_and_read_rate() {
        let (config, layout, journeys) = setup(900);
        let timeline = inject_anomalies(
            &journeys,
            &layout,
            None,
            Epoch(900),
            &mut ChaCha8Rng::seed_from_u64(1),
        );
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        let mut trajectories: Vec<TagTrajectory> = journeys.iter().map(case_trajectory).collect();
        for j in &journeys {
            for item in &j.items {
                trajectories.push(item_trajectory(*item, &timeline, &by_case, Epoch(900)));
            }
        }
        let rates = layout.read_rate_table(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let batch = generate_readings(&layout, &rates, &trajectories, Epoch(900), &mut rng);
        assert!(!batch.is_empty());
        // every reading is consistent with the tag actually being in range of
        // the reader that produced it
        let traj_by_tag: BTreeMap<TagId, &TagTrajectory> =
            trajectories.iter().map(|t| (t.tag, t)).collect();
        for r in batch.readings_unordered() {
            let loc = traj_by_tag[&r.tag]
                .location_at(r.time)
                .expect("tag present");
            let p = rates.rate(r.reader.location(), loc);
            assert!(p > 1e-3, "reading generated with negligible probability");
        }
    }

    #[test]
    fn empirical_read_rate_close_to_configured() {
        let (config, layout, journeys) = setup(600);
        let j = &journeys[0];
        let traj = vec![case_trajectory(j)];
        let rates = layout.read_rate_table(&config);
        // Average over many seeds: the entry reader interrogates every second
        // during the entry dwell, so expect ~RR * entry_dwell reads.
        let mut total = 0usize;
        let runs = 40;
        for seed in 0..runs {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let batch = generate_readings(&layout, &rates, &traj, Epoch(600), &mut rng);
            total += batch
                .readings_unordered()
                .iter()
                .filter(|r| {
                    r.reader.location() == layout.entry() && r.time < Epoch(config.entry_dwell)
                })
                .count();
        }
        let mean = total as f64 / runs as f64;
        let expected = config.read_rate * config.entry_dwell as f64;
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "mean entry reads {mean} should be near {expected}"
        );
    }

    #[test]
    fn ground_truth_matches_trajectories() {
        let (config, layout, journeys) = setup(600);
        let timeline = ContainmentTimeline::new(initial_containment(&journeys));
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        let item = journeys[0].items[0];
        let trajectories = vec![
            case_trajectory(&journeys[0]),
            item_trajectory(item, &timeline, &by_case, Epoch(config.length_secs)),
        ];
        let mut truth = GroundTruth::new(timeline);
        record_ground_truth(&mut truth, &trajectories);
        assert_eq!(
            truth.location_at(journeys[0].case, Epoch(0)),
            Some(layout.entry())
        );
        assert_eq!(
            truth.location_at(item, Epoch(config.entry_dwell + 1)),
            Some(layout.belt())
        );
    }
}
