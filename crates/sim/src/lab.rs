//! Emulation of the paper's laboratory RFID deployment (Section 5.2,
//! Appendix C.2).
//!
//! The physical lab had 2 ThingMagic Mercury5 readers driving 7
//! circularly-polarized antennas configured as 1 entry reader, 1 belt reader,
//! 4 shelf readers and 1 exit reader, and 20 cases of 5 items each that
//! transitioned through the readers in that order, receiving 5 interrogations
//! from every non-shelf reader and dozens from a shelf reader. Eight traces
//! T1–T8 varied the read rate (environmental noise), the overlap between
//! shelf readers, and whether containment changes were staged.
//!
//! We do not have the hardware, so this module reproduces each trace's
//! *generative characteristics* — read rate, overlap rate, dwell structure
//! and the published containment-change script (3 items moved between cases
//! plus 1 item removed once all cases are shelved) — which is exactly the
//! information the paper gives about the traces.

use crate::config::{ShelfScanMode, WarehouseConfig};
use crate::generate::{case_trajectory, generate_readings, item_trajectory, record_ground_truth};
use crate::layout::WarehouseLayout;
use crate::movement::CaseJourney;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{
    ContainmentChange, ContainmentMap, ContainmentTimeline, Epoch, GroundTruth, TagId, Trace,
    TraceMetadata,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of one of the eight published lab traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LabTraceId {
    /// High read rate (0.85), limited overlap (0.25), stable containment.
    T1,
    /// High read rate (0.85), significant overlap (0.5), stable containment.
    T2,
    /// Lower read rate (0.7, metal-bar noise), limited overlap (0.25).
    T3,
    /// Lower read rate (0.7), significant overlap (0.5).
    T4,
    /// T1 plus staged containment changes.
    T5,
    /// T2 plus staged containment changes.
    T6,
    /// T3 plus staged containment changes.
    T7,
    /// T4 plus staged containment changes.
    T8,
}

impl LabTraceId {
    /// All eight traces in order.
    pub const ALL: [LabTraceId; 8] = [
        LabTraceId::T1,
        LabTraceId::T2,
        LabTraceId::T3,
        LabTraceId::T4,
        LabTraceId::T5,
        LabTraceId::T6,
        LabTraceId::T7,
        LabTraceId::T8,
    ];

    /// The (read rate, overlap rate) of this trace per Appendix C.2.
    pub fn rates(self) -> (f64, f64) {
        match self {
            LabTraceId::T1 | LabTraceId::T5 => (0.85, 0.25),
            LabTraceId::T2 | LabTraceId::T6 => (0.85, 0.5),
            LabTraceId::T3 | LabTraceId::T7 => (0.7, 0.25),
            LabTraceId::T4 | LabTraceId::T8 => (0.7, 0.5),
        }
    }

    /// Whether this trace stages containment changes (T5–T8).
    pub fn has_changes(self) -> bool {
        matches!(
            self,
            LabTraceId::T5 | LabTraceId::T6 | LabTraceId::T7 | LabTraceId::T8
        )
    }

    /// Human-readable label ("T1".."T8").
    pub fn label(self) -> &'static str {
        match self {
            LabTraceId::T1 => "T1",
            LabTraceId::T2 => "T2",
            LabTraceId::T3 => "T3",
            LabTraceId::T4 => "T4",
            LabTraceId::T5 => "T5",
            LabTraceId::T6 => "T6",
            LabTraceId::T7 => "T7",
            LabTraceId::T8 => "T8",
        }
    }
}

/// Configuration of the lab emulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabConfig {
    /// Which published trace to emulate.
    pub trace: LabTraceId,
    /// Number of cases in the lab (the paper used 20).
    pub num_cases: u32,
    /// Items per case (the paper used 5).
    pub items_per_case: u32,
    /// Seconds each case spends at the entry / belt / exit readers
    /// (the paper reports 5 interrogations from each non-shelf reader).
    pub non_shelf_dwell: u32,
    /// Seconds cases stay on their shelves before repacking.
    pub shelf_dwell: u32,
    /// RNG seed.
    pub seed: u64,
}

impl LabConfig {
    /// Configuration matching the published deployment for the given trace.
    pub fn published(trace: LabTraceId) -> LabConfig {
        LabConfig {
            trace,
            num_cases: 20,
            items_per_case: 5,
            non_shelf_dwell: 5,
            shelf_dwell: 400,
            seed: 0x1ab,
        }
    }

    /// Number of shelf readers (the lab had 4).
    pub const NUM_SHELVES: u32 = 4;

    /// Generate the trace.
    pub fn generate(&self) -> Trace {
        let (read_rate, overlap_rate) = self.trace.rates();
        let wh = WarehouseConfig {
            read_rate,
            overlap_rate,
            num_shelves: Self::NUM_SHELVES,
            non_shelf_period: 1,
            shelf_scan: ShelfScanMode::Static { period_secs: 10 },
            background_rate: 1e-4,
            ..Default::default()
        };
        let layout = WarehouseLayout::new(&wh);

        // Build the case journeys: cases enter one at a time, spaced by the
        // non-shelf dwell so that the belt sees them sequentially.
        let mut journeys = Vec::new();
        let pallet = TagId::pallet(0);
        for k in 0..self.num_cases {
            let case = TagId::case(k as u64);
            let items = (0..self.items_per_case)
                .map(|i| TagId::item((k * self.items_per_case + i) as u64))
                .collect::<Vec<_>>();
            let arrival = Epoch(k * self.non_shelf_dwell);
            let belt_start = arrival.plus(self.non_shelf_dwell);
            let shelf_start = belt_start.plus(self.non_shelf_dwell);
            let shelf = layout.shelf(k % Self::NUM_SHELVES);
            let exit_start = shelf_start.plus(self.shelf_dwell);
            let departure = exit_start.plus(self.non_shelf_dwell);
            journeys.push(CaseJourney {
                case,
                pallet,
                items,
                segments: vec![
                    (arrival, layout.entry()),
                    (belt_start, layout.belt()),
                    (shelf_start, shelf),
                    (exit_start, layout.exit()),
                ],
                arrival,
                departure: Some(departure),
            });
        }
        let horizon = journeys
            .iter()
            .filter_map(|j| j.departure)
            .max()
            .unwrap_or(Epoch(600))
            .plus(10);

        // Containment: initial packing plus, for T5-T8, the staged changes
        // once every case is on its shelf (3 items moved, 1 removed).
        let mut containment = ContainmentMap::new();
        for j in &journeys {
            for item in &j.items {
                containment.set(*item, j.case);
            }
        }
        let mut timeline = ContainmentTimeline::new(containment);
        if self.trace.has_changes() {
            let all_shelved = journeys
                .iter()
                .map(|j| j.segments[2].0)
                .max()
                .unwrap()
                .plus(30);
            let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xc4a);
            let mut cases: Vec<&CaseJourney> = journeys.iter().collect();
            cases.shuffle(&mut rng);
            // three moves between distinct cases
            for pair in 0..3usize {
                let from = cases[pair * 2];
                let to = cases[pair * 2 + 1];
                let item = from.items[pair % from.items.len()];
                timeline.record(ContainmentChange {
                    time: all_shelved,
                    object: item,
                    old_container: Some(from.case),
                    new_container: Some(to.case),
                });
            }
            // one removal
            let victim_case = cases[6];
            timeline.record(ContainmentChange {
                time: all_shelved,
                object: victim_case.items[0],
                old_container: Some(victim_case.case),
                new_container: None,
            });
        }

        // Trajectories and readings.
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        let mut trajectories: Vec<_> = journeys.iter().map(case_trajectory).collect();
        for j in &journeys {
            for item in &j.items {
                trajectories.push(item_trajectory(*item, &timeline, &by_case, horizon));
            }
        }
        let rates = layout.read_rate_table(&wh);
        let mut truth = GroundTruth::new(timeline);
        record_ground_truth(&mut truth, &trajectories);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let readings = generate_readings(&layout, &rates, &trajectories, horizon, &mut rng);

        Trace {
            readings,
            truth,
            read_rates: rates,
            meta: TraceMetadata {
                name: self.trace.label().to_string(),
                read_rate,
                overlap_rate,
                length: horizon.0,
                anomaly_interval: if self.trace.has_changes() {
                    Some(0)
                } else {
                    None
                },
                num_locations: layout.num_locations(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_parameters_match_appendix_c2() {
        assert_eq!(LabTraceId::T1.rates(), (0.85, 0.25));
        assert_eq!(LabTraceId::T2.rates(), (0.85, 0.5));
        assert_eq!(LabTraceId::T3.rates(), (0.7, 0.25));
        assert_eq!(LabTraceId::T4.rates(), (0.7, 0.5));
        assert_eq!(LabTraceId::T5.rates(), LabTraceId::T1.rates());
        assert_eq!(LabTraceId::T8.rates(), LabTraceId::T4.rates());
        assert!(!LabTraceId::T1.has_changes());
        assert!(LabTraceId::T5.has_changes());
        assert_eq!(LabTraceId::ALL.len(), 8);
    }

    #[test]
    fn lab_trace_has_expected_population() {
        let trace = LabConfig::published(LabTraceId::T1).generate();
        assert_eq!(trace.containers().len(), 20);
        assert_eq!(trace.objects().len(), 100);
        assert!(!trace.readings.is_empty());
        assert_eq!(trace.meta.name, "T1");
        assert_eq!(trace.meta.num_locations, 7);
    }

    #[test]
    fn stable_traces_have_no_changes_and_staged_traces_do() {
        let t1 = LabConfig::published(LabTraceId::T1).generate();
        assert!(t1.truth.containment.changes().is_empty());
        let t5 = LabConfig::published(LabTraceId::T5).generate();
        let changes = t5.truth.containment.changes();
        assert_eq!(changes.len(), 4, "3 moves + 1 removal");
        assert_eq!(
            changes.iter().filter(|c| c.new_container.is_none()).count(),
            1
        );
        // moves are between distinct cases
        for c in changes.iter().filter(|c| c.new_container.is_some()) {
            assert_ne!(c.old_container, c.new_container);
        }
    }

    #[test]
    fn higher_read_rate_trace_is_denser() {
        let t1 = LabConfig::published(LabTraceId::T1).generate();
        let t3 = LabConfig::published(LabTraceId::T3).generate();
        assert!(t1.readings.len() > t3.readings.len());
    }

    #[test]
    fn removed_item_stays_on_its_shelf_after_the_case_leaves() {
        let trace = LabConfig::published(LabTraceId::T5).generate();
        let removal = trace
            .truth
            .containment
            .changes()
            .iter()
            .copied()
            .find(|c| c.new_container.is_none())
            .unwrap();
        let shelf_loc = trace
            .truth
            .location_at(removal.object, removal.time)
            .unwrap();
        let end = Epoch(trace.meta.length - 1);
        assert_eq!(
            trace.truth.location_at(removal.object, end),
            Some(shelf_loc)
        );
        // ... while its former case has moved on to the exit by the end.
        let case = removal.old_container.unwrap();
        assert_ne!(trace.truth.location_at(case, end), Some(shelf_loc));
    }
}
