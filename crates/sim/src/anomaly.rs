//! Injection of containment anomalies.
//!
//! To generate "events of interest" (Section 5.1), the simulator can inject
//! anomalies that randomly choose an item and move it to a different case in
//! the warehouse, with a configurable interval FA between anomalies. The
//! resulting true containment history is recorded in a
//! [`ContainmentTimeline`] so that change-point detection can be scored
//! against ground truth.

use crate::layout::WarehouseLayout;
use crate::movement::CaseJourney;
use rand::seq::SliceRandom;
use rand::Rng;
use rfid_types::{ContainmentChange, ContainmentMap, ContainmentTimeline, Epoch, TagId};

/// Build the initial containment map implied by how cases were packed.
pub fn initial_containment(journeys: &[CaseJourney]) -> ContainmentMap {
    let mut map = ContainmentMap::new();
    for j in journeys {
        for item in &j.items {
            map.set(*item, j.case);
        }
    }
    map
}

/// Inject anomalies into the containment relation every `interval` seconds:
/// at each anomaly epoch a random item whose case is currently stored on a
/// shelf is moved to a *different* case that is also on a shelf at that time.
///
/// Returns the containment timeline (initial packing plus all injected
/// changes). If at some anomaly epoch fewer than two cases are on shelves,
/// that anomaly is skipped — exactly what a physical "misplacement" would
/// require.
pub fn inject_anomalies<R: Rng>(
    journeys: &[CaseJourney],
    layout: &WarehouseLayout,
    interval: Option<u32>,
    horizon: Epoch,
    rng: &mut R,
) -> ContainmentTimeline {
    let mut timeline = ContainmentTimeline::new(initial_containment(journeys));
    let Some(interval) = interval else {
        return timeline;
    };
    assert!(interval > 0, "anomaly interval must be positive");

    let mut t = interval;
    while t < horizon.0 {
        let now = Epoch(t);
        // Cases currently stored on a shelf.
        let shelved: Vec<&CaseJourney> = journeys
            .iter()
            .filter(|j| {
                j.location_at(now)
                    .map(|loc| layout.is_shelf(loc))
                    .unwrap_or(false)
            })
            .collect();
        if shelved.len() >= 2 {
            // Pick a victim item from one shelved case (according to the
            // *current* containment so repeated moves compose correctly).
            let current = timeline.at(now);
            let candidates: Vec<(TagId, TagId)> = shelved
                .iter()
                .flat_map(|j| {
                    current
                        .objects_in(j.case)
                        .into_iter()
                        .map(move |item| (item, j.case))
                })
                .collect();
            if let Some(&(item, old_case)) = candidates.choose(rng) {
                let targets: Vec<TagId> = shelved
                    .iter()
                    .map(|j| j.case)
                    .filter(|c| *c != old_case)
                    .collect();
                if let Some(&new_case) = targets.choose(rng) {
                    timeline.record(ContainmentChange {
                        time: now,
                        object: item,
                        old_container: Some(old_case),
                        new_container: Some(new_case),
                    });
                }
            }
        }
        t += interval;
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WarehouseConfig;
    use crate::movement::{build_journeys, source_arrivals, TagSerials};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn journeys(len: u32) -> (WarehouseConfig, WarehouseLayout, Vec<CaseJourney>) {
        let config = WarehouseConfig::default().with_length(len).with_seed(11);
        let layout = WarehouseLayout::new(&config);
        let mut serials = TagSerials::new();
        let arrivals = source_arrivals(&config, &mut serials);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let j = build_journeys(&config, &layout, &arrivals, &mut rng);
        (config, layout, j)
    }

    #[test]
    fn initial_containment_packs_every_item() {
        let (config, _, j) = journeys(600);
        let map = initial_containment(&j);
        let expected_items = j.len() * config.items_per_case as usize;
        assert_eq!(map.len(), expected_items);
        for journey in &j {
            for item in &journey.items {
                assert_eq!(map.container_of(*item), Some(journey.case));
            }
        }
    }

    #[test]
    fn no_interval_means_stable_containment() {
        let (_, layout, j) = journeys(600);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tl = inject_anomalies(&j, &layout, None, Epoch(600), &mut rng);
        assert!(tl.changes().is_empty());
    }

    #[test]
    fn anomalies_move_items_between_distinct_shelved_cases() {
        let (_, layout, j) = journeys(1800);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tl = inject_anomalies(&j, &layout, Some(60), Epoch(1800), &mut rng);
        assert!(!tl.changes().is_empty(), "long trace should see anomalies");
        for change in tl.changes() {
            assert!(change.object.is_object());
            let old = change.old_container.expect("moved items had a container");
            let new = change.new_container.expect("anomalies move, not remove");
            assert_ne!(old, new, "item must move to a *different* case");
            // both cases are on shelves at the time of the change
            for case in [old, new] {
                let journey = j.iter().find(|x| x.case == case).unwrap();
                let loc = journey.location_at(change.time).unwrap();
                assert!(layout.is_shelf(loc));
            }
        }
        // changes are time-ordered and respect the interval grid
        for w in tl.changes().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(tl.changes().iter().all(|c| c.time.0 % 60 == 0));
    }

    #[test]
    fn repeated_moves_compose() {
        let (_, layout, j) = journeys(3000);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let tl = inject_anomalies(&j, &layout, Some(30), Epoch(3000), &mut rng);
        // The old_container recorded for each change must equal the
        // container in force immediately before the change.
        for (idx, change) in tl.changes().iter().enumerate() {
            let before = change.time.minus(1);
            // replay only earlier changes
            let mut replay = ContainmentTimeline::new(tl.initial().clone());
            for earlier in tl.changes().iter().take(idx) {
                replay.record(*earlier);
            }
            assert_eq!(
                replay.container_at(change.object, before),
                change.old_container
            );
        }
    }
}
