//! Single-warehouse simulator: combines layout, movement, anomaly injection
//! and reading generation into one [`Trace`] with ground truth.

use crate::anomaly::inject_anomalies;
use crate::config::WarehouseConfig;
use crate::generate::{
    case_trajectory, generate_readings, item_trajectory, record_ground_truth, TagTrajectory,
};
use crate::layout::WarehouseLayout;
use crate::movement::{build_journeys, source_arrivals, CaseJourney, PalletArrival, TagSerials};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_types::{Epoch, GroundTruth, TagId, Trace, TraceMetadata};
use std::collections::BTreeMap;

/// Simulator of one warehouse (one site).
///
/// ```
/// use rfid_sim::{WarehouseConfig, WarehouseSimulator};
///
/// let config = WarehouseConfig::default().with_length(600).with_read_rate(0.8);
/// let trace = WarehouseSimulator::new(config).generate();
/// assert!(!trace.readings.is_empty());
/// assert!(!trace.objects().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WarehouseSimulator {
    config: WarehouseConfig,
}

impl WarehouseSimulator {
    /// Create a simulator from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`WarehouseConfig::validate`]).
    pub fn new(config: WarehouseConfig) -> WarehouseSimulator {
        if let Err(msg) = config.validate() {
            panic!("invalid warehouse configuration: {msg}");
        }
        WarehouseSimulator { config }
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &WarehouseConfig {
        &self.config
    }

    /// The layout of the simulated warehouse.
    pub fn layout(&self) -> WarehouseLayout {
        WarehouseLayout::new(&self.config)
    }

    /// Generate a full trace: pallets are injected at the entry door per
    /// Table 2, cases travel entry → belt → shelf → exit, readers produce
    /// noisy readings, and (if configured) anomalies relocate items between
    /// cases.
    pub fn generate(&self) -> Trace {
        let mut serials = TagSerials::new();
        let arrivals = source_arrivals(&self.config, &mut serials);
        self.generate_from_arrivals(&arrivals, 0)
    }

    /// Generate a trace given an explicit pallet arrival schedule. Used by
    /// the multi-warehouse simulator, which routes pallets between sites;
    /// `seed_offset` decorrelates the noise of different sites.
    pub fn generate_from_arrivals(&self, arrivals: &[PalletArrival], seed_offset: u64) -> Trace {
        let layout = self.layout();
        let horizon = Epoch(self.config.length_secs);
        let mut movement_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x9e37 ^ seed_offset);
        let journeys = build_journeys(&self.config, &layout, arrivals, &mut movement_rng);

        let mut anomaly_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xa11 ^ seed_offset);
        let timeline = inject_anomalies(
            &journeys,
            &layout,
            self.config.anomaly_interval,
            horizon,
            &mut anomaly_rng,
        );

        let trajectories = self.trajectories(&journeys, &timeline, horizon);
        let mut truth = GroundTruth::new(timeline);
        record_ground_truth(&mut truth, &trajectories);

        let rates = layout.read_rate_table(&self.config);
        let mut reading_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xbeef ^ seed_offset);
        let readings = generate_readings(&layout, &rates, &trajectories, horizon, &mut reading_rng);

        Trace {
            readings,
            truth,
            read_rates: rates,
            meta: TraceMetadata {
                name: format!("warehouse-rr{:.2}", self.config.read_rate),
                read_rate: self.config.read_rate,
                overlap_rate: self.config.overlap_rate,
                length: self.config.length_secs,
                anomaly_interval: self.config.anomaly_interval,
                num_locations: self.config.num_locations(),
            },
        }
    }

    /// Case journeys for an externally supplied arrival schedule (used by the
    /// chain simulator to learn departure times).
    pub fn journeys_for(&self, arrivals: &[PalletArrival], seed_offset: u64) -> Vec<CaseJourney> {
        let layout = self.layout();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x9e37 ^ seed_offset);
        build_journeys(&self.config, &layout, arrivals, &mut rng)
    }

    fn trajectories(
        &self,
        journeys: &[CaseJourney],
        timeline: &rfid_types::ContainmentTimeline,
        horizon: Epoch,
    ) -> Vec<TagTrajectory> {
        let by_case: BTreeMap<TagId, &CaseJourney> = journeys.iter().map(|j| (j.case, j)).collect();
        let mut trajectories: Vec<TagTrajectory> = journeys.iter().map(case_trajectory).collect();
        for j in journeys {
            for item in &j.items {
                trajectories.push(item_trajectory(*item, timeline, &by_case, horizon));
            }
        }
        trajectories
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_has_readings_truth_and_metadata() {
        let config = WarehouseConfig::default().with_length(900).with_seed(5);
        let sim = WarehouseSimulator::new(config.clone());
        let trace = sim.generate();
        assert!(!trace.readings.is_empty());
        assert_eq!(trace.meta.length, 900);
        assert!((trace.meta.read_rate - config.read_rate).abs() < 1e-12);
        assert_eq!(trace.meta.num_locations, config.num_locations());
        // every case has items and every item has a ground-truth container
        let objects = trace.objects();
        assert!(!objects.is_empty());
        for o in objects.iter().take(20) {
            assert!(trace.truth.container_at(*o, Epoch(0)).is_some());
        }
        // readings never mention unknown tags
        let known: std::collections::BTreeSet<TagId> = trace.truth.tags().collect();
        for r in trace.readings.readings_unordered() {
            assert!(known.contains(&r.tag));
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let config = WarehouseConfig::default().with_length(600).with_seed(77);
        let a = WarehouseSimulator::new(config.clone()).generate();
        let b = WarehouseSimulator::new(config).generate();
        assert_eq!(
            a.readings.readings_unordered(),
            b.readings.readings_unordered()
        );
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let a = WarehouseSimulator::new(WarehouseConfig::default().with_length(600).with_seed(1))
            .generate();
        let b = WarehouseSimulator::new(WarehouseConfig::default().with_length(600).with_seed(2))
            .generate();
        assert_ne!(
            a.readings.readings_unordered(),
            b.readings.readings_unordered()
        );
    }

    #[test]
    fn higher_read_rate_produces_more_readings() {
        let lo = WarehouseSimulator::new(
            WarehouseConfig::default()
                .with_length(600)
                .with_read_rate(0.6)
                .with_seed(3),
        )
        .generate();
        let hi = WarehouseSimulator::new(
            WarehouseConfig::default()
                .with_length(600)
                .with_read_rate(0.95)
                .with_seed(3),
        )
        .generate();
        assert!(hi.readings.len() > lo.readings.len());
    }

    #[test]
    fn anomalies_show_up_in_ground_truth() {
        let trace = WarehouseSimulator::new(
            WarehouseConfig::default()
                .with_length(2400)
                .with_anomaly_interval(30)
                .with_seed(9),
        )
        .generate();
        assert!(!trace.truth.containment.changes().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid warehouse configuration")]
    fn invalid_config_panics() {
        let _ = WarehouseSimulator::new(WarehouseConfig {
            read_rate: 2.0,
            ..Default::default()
        });
    }
}
