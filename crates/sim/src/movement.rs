//! Object movement schedules inside a warehouse.
//!
//! The simulator follows the flow described in Appendix C.1: pallets arrive
//! at the entry door, are unpacked, their cases are scanned one at a time on
//! the conveyor belt, placed on shelves for a stay, repacked, and finally
//! read at the exit door before dispatch. A [`CaseJourney`] captures that
//! flow as a list of `(epoch, location)` segments for one case and its items.

use crate::config::WarehouseConfig;
use crate::layout::WarehouseLayout;
use rand::Rng;
use rfid_types::{Epoch, LocationId, TagId};
use serde::{Deserialize, Serialize};

/// The trajectory of one case (and, implicitly, the items packed in it)
/// through one warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseJourney {
    /// The case tag.
    pub case: TagId,
    /// The pallet the case arrived (and departs) on.
    pub pallet: TagId,
    /// Item tags initially packed in this case.
    pub items: Vec<TagId>,
    /// Time-ordered `(start epoch, location)` segments; the case is at each
    /// location until the start of the next segment or until [`Self::departure`].
    pub segments: Vec<(Epoch, LocationId)>,
    /// Epoch the case arrived at the warehouse entry.
    pub arrival: Epoch,
    /// Epoch the case leaves the warehouse through the exit door (exclusive
    /// end of the last segment). `None` if it is still inside when the trace
    /// ends.
    pub departure: Option<Epoch>,
}

impl CaseJourney {
    /// The case's location at epoch `t`, or `None` if it has not arrived yet
    /// or has already departed.
    pub fn location_at(&self, t: Epoch) -> Option<LocationId> {
        if t < self.arrival {
            return None;
        }
        if let Some(dep) = self.departure {
            if t >= dep {
                return None;
            }
        }
        let mut current = None;
        for &(start, loc) in &self.segments {
            if start <= t {
                current = Some(loc);
            } else {
                break;
            }
        }
        current
    }

    /// The shelf this case was stored on, if it reached a shelf.
    pub fn shelf(&self, layout: &WarehouseLayout) -> Option<LocationId> {
        self.segments
            .iter()
            .map(|&(_, loc)| loc)
            .find(|&loc| layout.is_shelf(loc))
    }

    /// Inclusive-exclusive epoch range the case spends on its shelf, if any.
    pub fn shelf_interval(&self, layout: &WarehouseLayout) -> Option<(Epoch, Epoch)> {
        let mut start = None;
        for (idx, &(seg_start, loc)) in self.segments.iter().enumerate() {
            if layout.is_shelf(loc) {
                let end = self
                    .segments
                    .get(idx + 1)
                    .map(|&(next, _)| next)
                    .or(self.departure)
                    .unwrap_or(Epoch(u32::MAX));
                start = Some((seg_start, end));
                break;
            }
        }
        start
    }
}

/// Description of one pallet arriving at a warehouse: when it arrives and
/// which cases (with items) it carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PalletArrival {
    /// The pallet tag.
    pub pallet: TagId,
    /// Arrival epoch at the entry door.
    pub arrival: Epoch,
    /// Cases on the pallet, each with its packed items.
    pub cases: Vec<(TagId, Vec<TagId>)>,
}

/// Build the journeys of every case on the given arriving pallets through a
/// single warehouse, using the dwell times of `config` and shelves assigned
/// round-robin. Dwell on the shelf is sampled uniformly from
/// `[shelf_dwell_min, shelf_dwell_max]`.
pub fn build_journeys<R: Rng>(
    config: &WarehouseConfig,
    layout: &WarehouseLayout,
    arrivals: &[PalletArrival],
    rng: &mut R,
) -> Vec<CaseJourney> {
    let horizon = Epoch(config.length_secs);
    let mut journeys = Vec::new();
    let mut shelf_cursor = 0u32;
    for pallet in arrivals {
        for (case_index, (case, items)) in pallet.cases.iter().enumerate() {
            let mut segments = Vec::with_capacity(4);
            let arrival = pallet.arrival;
            segments.push((arrival, layout.entry()));

            // Cases are unpacked after the entry dwell and scanned on the
            // belt one at a time, in case order.
            let belt_start =
                arrival.plus(config.entry_dwell + case_index as u32 * config.belt_dwell);
            let belt_end = belt_start.plus(config.belt_dwell);
            if belt_start < horizon {
                segments.push((belt_start, layout.belt()));
            }

            // Shelf assignment is round-robin across the warehouse.
            let shelf = layout.shelf(shelf_cursor % config.num_shelves);
            shelf_cursor += 1;
            let dwell = if config.shelf_dwell_max > config.shelf_dwell_min {
                rng.gen_range(config.shelf_dwell_min..=config.shelf_dwell_max)
            } else {
                config.shelf_dwell_min
            };
            let shelf_start = belt_end;
            let shelf_end = shelf_start.plus(dwell);
            if shelf_start < horizon {
                segments.push((shelf_start, shelf));
            }

            // Repacked and read at the exit door before dispatch.
            let exit_start = shelf_end;
            let exit_end = exit_start.plus(config.exit_dwell);
            if exit_start < horizon {
                segments.push((exit_start, layout.exit()));
            }
            let departure = if exit_end < horizon {
                Some(exit_end)
            } else {
                None
            };

            journeys.push(CaseJourney {
                case: *case,
                pallet: pallet.pallet,
                items: items.clone(),
                segments,
                arrival,
                departure,
            });
        }
    }
    journeys
}

/// Generate the pallet arrival sequence of a *source* warehouse: one pallet
/// every `pallet_injection_interval` seconds, each with
/// `cases_per_pallet` cases of `items_per_case` items, with tag serial
/// numbers drawn from `serials` so that multi-warehouse simulations never
/// reuse a tag.
pub fn source_arrivals(config: &WarehouseConfig, serials: &mut TagSerials) -> Vec<PalletArrival> {
    let mut arrivals = Vec::new();
    let mut t = 0u32;
    while t < config.length_secs {
        let pallet = serials.next_pallet();
        let cases = (0..config.cases_per_pallet)
            .map(|_| {
                let case = serials.next_case();
                let items = (0..config.items_per_case)
                    .map(|_| serials.next_item())
                    .collect();
                (case, items)
            })
            .collect();
        arrivals.push(PalletArrival {
            pallet,
            arrival: Epoch(t),
            cases,
        });
        t += config.pallet_injection_interval;
    }
    arrivals
}

/// Monotonic tag-serial allocator shared across warehouses of one simulated
/// supply chain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagSerials {
    item: u64,
    case: u64,
    pallet: u64,
}

impl TagSerials {
    /// Create an allocator starting at serial 0 for every kind.
    pub fn new() -> TagSerials {
        TagSerials::default()
    }

    /// Allocate the next item tag.
    pub fn next_item(&mut self) -> TagId {
        let t = TagId::item(self.item);
        self.item += 1;
        t
    }

    /// Allocate the next case tag.
    pub fn next_case(&mut self) -> TagId {
        let t = TagId::case(self.case);
        self.case += 1;
        t
    }

    /// Allocate the next pallet tag.
    pub fn next_pallet(&mut self) -> TagId {
        let t = TagId::pallet(self.pallet);
        self.pallet += 1;
        t
    }

    /// Number of item tags allocated so far.
    pub fn items_allocated(&self) -> u64 {
        self.item
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (WarehouseConfig, WarehouseLayout, Vec<CaseJourney>) {
        let config = WarehouseConfig::default().with_length(3000).with_seed(1);
        let layout = WarehouseLayout::new(&config);
        let mut serials = TagSerials::new();
        let arrivals = source_arrivals(&config, &mut serials);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let journeys = build_journeys(&config, &layout, &arrivals, &mut rng);
        (config, layout, journeys)
    }

    #[test]
    fn arrivals_follow_injection_interval() {
        let config = WarehouseConfig::default().with_length(300);
        let mut serials = TagSerials::new();
        let arrivals = source_arrivals(&config, &mut serials);
        assert_eq!(arrivals.len(), 5);
        assert_eq!(arrivals[0].arrival, Epoch(0));
        assert_eq!(arrivals[1].arrival, Epoch(60));
        assert_eq!(arrivals[0].cases.len(), config.cases_per_pallet as usize);
        assert_eq!(arrivals[0].cases[0].1.len(), config.items_per_case as usize);
        // no tag reuse across pallets
        let all_cases: Vec<TagId> = arrivals
            .iter()
            .flat_map(|p| p.cases.iter().map(|c| c.0))
            .collect();
        let mut deduped = all_cases.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(all_cases.len(), deduped.len());
    }

    #[test]
    fn journeys_visit_entry_belt_shelf_exit_in_order() {
        let (config, layout, journeys) = setup();
        assert_eq!(
            journeys.len(),
            (config.num_pallets() * config.cases_per_pallet) as usize
        );
        let j = &journeys[0];
        assert_eq!(j.segments[0].1, layout.entry());
        assert_eq!(j.segments[1].1, layout.belt());
        assert!(layout.is_shelf(j.segments[2].1));
        assert_eq!(j.segments[3].1, layout.exit());
        assert!(j.segments.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn location_at_respects_segment_boundaries() {
        let (config, layout, journeys) = setup();
        let j = &journeys[0];
        assert_eq!(j.location_at(Epoch(0)), Some(layout.entry()));
        assert_eq!(
            j.location_at(Epoch(config.entry_dwell)),
            Some(layout.belt()),
            "first case hits the belt right after the entry dwell"
        );
        if let Some(dep) = j.departure {
            assert_eq!(j.location_at(dep), None, "departed cases have no location");
            assert_eq!(j.location_at(dep.minus(1)), Some(layout.exit()));
        }
        // second case of the pallet reaches the belt one belt-dwell later
        let j2 = &journeys[1];
        assert_eq!(
            j2.location_at(Epoch(config.entry_dwell)),
            Some(layout.entry())
        );
        assert_eq!(
            j2.location_at(Epoch(config.entry_dwell + config.belt_dwell)),
            Some(layout.belt())
        );
    }

    #[test]
    fn shelf_interval_matches_segments() {
        let (_, layout, journeys) = setup();
        let j = &journeys[0];
        let (start, end) = j.shelf_interval(&layout).expect("reaches a shelf");
        assert!(start < end);
        assert_eq!(j.location_at(start), j.shelf(&layout));
        assert_eq!(j.location_at(end.minus(1)), j.shelf(&layout));
    }

    #[test]
    fn shelf_assignment_is_round_robin() {
        let (config, layout, journeys) = setup();
        let shelves: Vec<LocationId> = journeys.iter().filter_map(|j| j.shelf(&layout)).collect();
        // the first `num_shelves` cases land on distinct shelves
        let first: Vec<LocationId> = shelves
            .iter()
            .take(config.num_shelves as usize)
            .copied()
            .collect();
        let mut deduped = first.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(first.len(), deduped.len());
    }

    #[test]
    fn tag_serials_are_unique_per_kind() {
        let mut s = TagSerials::new();
        let a = s.next_item();
        let b = s.next_item();
        let c = s.next_case();
        assert_ne!(a, b);
        assert_eq!(a.kind(), rfid_types::TagKind::Item);
        assert_eq!(c.kind(), rfid_types::TagKind::Case);
        assert_eq!(s.items_allocated(), 2);
    }
}
