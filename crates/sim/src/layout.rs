//! Physical layout of a simulated warehouse: which reader location plays
//! which role (entry door, conveyor belt, shelves, exit door), the resulting
//! read-rate table, and each reader's interrogation schedule.

use crate::config::{ShelfScanMode, WarehouseConfig};
use rfid_types::{Epoch, LocationId, ReadRateTable};
use serde::{Deserialize, Serialize};

/// Role-annotated reader locations of one warehouse.
///
/// Locations are numbered `0 = entry, 1 = belt, 2..2+S = shelves,
/// 2+S = exit` where `S` is the number of shelves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseLayout {
    num_shelves: u32,
    shelf_scan: ShelfScanMode,
    non_shelf_period: u32,
}

impl WarehouseLayout {
    /// Build the layout described by a warehouse configuration.
    pub fn new(config: &WarehouseConfig) -> WarehouseLayout {
        WarehouseLayout {
            num_shelves: config.num_shelves,
            shelf_scan: config.shelf_scan,
            non_shelf_period: config.non_shelf_period,
        }
    }

    /// Location of the entry-door reader.
    pub fn entry(&self) -> LocationId {
        LocationId(0)
    }

    /// Location of the conveyor-belt reader.
    pub fn belt(&self) -> LocationId {
        LocationId(1)
    }

    /// Location of shelf `i` (0-based).
    ///
    /// # Panics
    /// Panics if `i >= num_shelves`.
    pub fn shelf(&self, i: u32) -> LocationId {
        assert!(i < self.num_shelves, "shelf index {i} out of range");
        LocationId((2 + i) as u16)
    }

    /// All shelf locations.
    pub fn shelves(&self) -> Vec<LocationId> {
        (0..self.num_shelves).map(|i| self.shelf(i)).collect()
    }

    /// Location of the exit-door reader.
    pub fn exit(&self) -> LocationId {
        LocationId((2 + self.num_shelves) as u16)
    }

    /// Total number of reader locations.
    pub fn num_locations(&self) -> usize {
        (3 + self.num_shelves) as usize
    }

    /// Whether the given location is a shelf.
    pub fn is_shelf(&self, loc: LocationId) -> bool {
        loc != self.entry() && loc != self.belt() && loc != self.exit()
    }

    /// The shelf index of a shelf location.
    pub fn shelf_index(&self, loc: LocationId) -> Option<u32> {
        if self.is_shelf(loc) {
            Some(loc.0 as u32 - 2)
        } else {
            None
        }
    }

    /// Build the read-rate table `pi(r, a)` for this layout: each reader
    /// detects tags at its own location with probability `read_rate`; shelf
    /// readers additionally detect tags on *adjacent* shelves with
    /// probability `overlap_rate * read_rate`; every other pair gets
    /// `background_rate`.
    pub fn read_rate_table(&self, config: &WarehouseConfig) -> ReadRateTable {
        let n = self.num_locations();
        let mut table = ReadRateTable::uniform(n, config.background_rate);
        for loc in table.locations().collect::<Vec<_>>() {
            table.set(loc, loc, config.read_rate);
        }
        // Overlap between adjacent shelf readers.
        for i in 0..self.num_shelves {
            let here = self.shelf(i);
            let overlap = config.overlap_rate * config.read_rate;
            if i > 0 {
                table.set(here, self.shelf(i - 1), overlap);
            }
            if i + 1 < self.num_shelves {
                table.set(here, self.shelf(i + 1), overlap);
            }
        }
        table
    }

    /// Whether the reader at `loc` interrogates during epoch `t`.
    ///
    /// Non-shelf readers interrogate every `non_shelf_period` seconds.
    /// Static shelf readers interrogate every `period_secs` seconds, all in
    /// the same epochs: the inference model of the paper assumes that when
    /// one reader interrogates, the others do too (a missed reading is
    /// evidence), so interleaving shelf-reader schedules would violate the
    /// model the readings are later evaluated under. With a mobile reader,
    /// shelf `i` is only interrogated while the mobile reader is parked in
    /// front of it during its round-robin sweep of the aisle.
    pub fn interrogates(&self, loc: LocationId, t: Epoch) -> bool {
        match self.shelf_index(loc) {
            None => t.0.is_multiple_of(self.non_shelf_period),
            Some(i) => match self.shelf_scan {
                ShelfScanMode::Static { period_secs } => t.0.is_multiple_of(period_secs),
                ShelfScanMode::Mobile {
                    dwell_secs,
                    shelves_per_aisle,
                } => {
                    let aisle_len = shelves_per_aisle.max(1);
                    let cycle = dwell_secs * aisle_len;
                    let pos_in_cycle = t.0 % cycle;
                    let visited_shelf = pos_in_cycle / dwell_secs;
                    visited_shelf == i % aisle_len
                }
            },
        }
    }

    /// Every epoch in `[from, to]` (inclusive) at which the reader at `loc`
    /// interrogates.
    pub fn interrogation_epochs(&self, loc: LocationId, from: Epoch, to: Epoch) -> Vec<Epoch> {
        (from.0..=to.0)
            .map(Epoch)
            .filter(|t| self.interrogates(loc, *t))
            .collect()
    }

    /// The readers that have a non-background probability of detecting a tag
    /// located at `at`: the co-located reader plus, for shelves, the adjacent
    /// shelf readers. Restricting the generator (and the E-step) to these
    /// readers is the sparsity optimization of Appendix A.3.
    pub fn effective_readers(&self, at: LocationId) -> Vec<LocationId> {
        let mut readers = vec![at];
        if let Some(i) = self.shelf_index(at) {
            if i > 0 {
                readers.push(self.shelf(i - 1));
            }
            if i + 1 < self.num_shelves {
                readers.push(self.shelf(i + 1));
            }
        }
        readers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> (WarehouseLayout, WarehouseConfig) {
        let config = WarehouseConfig::default();
        (WarehouseLayout::new(&config), config)
    }

    #[test]
    fn location_roles_are_disjoint_and_complete() {
        let (l, c) = layout();
        assert_eq!(l.entry(), LocationId(0));
        assert_eq!(l.belt(), LocationId(1));
        assert_eq!(l.shelves().len(), c.num_shelves as usize);
        assert_eq!(l.exit(), LocationId((2 + c.num_shelves) as u16));
        assert_eq!(l.num_locations(), c.num_locations());
        assert!(!l.is_shelf(l.entry()));
        assert!(!l.is_shelf(l.belt()));
        assert!(!l.is_shelf(l.exit()));
        assert!(l.is_shelf(l.shelf(0)));
        assert_eq!(l.shelf_index(l.shelf(3)), Some(3));
        assert_eq!(l.shelf_index(l.entry()), None);
    }

    #[test]
    fn read_rate_table_has_diagonal_overlap_and_background() {
        let (l, c) = layout();
        let t = l.read_rate_table(&c);
        assert!((t.rate(l.entry(), l.entry()) - c.read_rate).abs() < 1e-9);
        assert!((t.rate(l.shelf(2), l.shelf(3)) - c.overlap_rate * c.read_rate).abs() < 1e-9);
        assert!((t.rate(l.shelf(3), l.shelf(2)) - c.overlap_rate * c.read_rate).abs() < 1e-9);
        // Non-adjacent shelves and non-shelf readers only get background.
        assert!(t.rate(l.shelf(0), l.shelf(2)) <= c.background_rate + 1e-9);
        assert!(t.rate(l.entry(), l.exit()) <= c.background_rate + 1e-9);
    }

    #[test]
    fn non_shelf_readers_interrogate_every_period() {
        let (l, _) = layout();
        for t in 0..20 {
            assert!(l.interrogates(l.entry(), Epoch(t)));
            assert!(l.interrogates(l.belt(), Epoch(t)));
            assert!(l.interrogates(l.exit(), Epoch(t)));
        }
    }

    #[test]
    fn static_shelf_readers_interrogate_periodically() {
        let (l, c) = layout();
        let period = match c.shelf_scan {
            ShelfScanMode::Static { period_secs } => period_secs,
            _ => unreachable!(),
        };
        let epochs = l.interrogation_epochs(l.shelf(0), Epoch(0), Epoch(99));
        assert_eq!(epochs.len(), 100 / period as usize);
        // all shelf readers fire in the same epochs (see `interrogates` docs)
        let epochs1 = l.interrogation_epochs(l.shelf(1), Epoch(0), Epoch(99));
        assert_eq!(epochs, epochs1);
        assert!(epochs.iter().all(|e| e.0 % period == 0));
    }

    #[test]
    fn mobile_reader_visits_each_shelf_in_turn() {
        let config = WarehouseConfig {
            shelf_scan: ShelfScanMode::Mobile {
                dwell_secs: 10,
                shelves_per_aisle: 4,
            },
            num_shelves: 4,
            ..Default::default()
        };
        let l = WarehouseLayout::new(&config);
        // During [0,10) the mobile reader is at shelf 0, during [10,20) at shelf 1, ...
        assert!(l.interrogates(l.shelf(0), Epoch(5)));
        assert!(!l.interrogates(l.shelf(1), Epoch(5)));
        assert!(l.interrogates(l.shelf(1), Epoch(15)));
        assert!(l.interrogates(l.shelf(3), Epoch(35)));
        // the cycle repeats
        assert!(l.interrogates(l.shelf(0), Epoch(42)));
        // every shelf gets some coverage over a full cycle
        for i in 0..4 {
            assert!(!l
                .interrogation_epochs(l.shelf(i), Epoch(0), Epoch(39))
                .is_empty());
        }
    }

    #[test]
    fn effective_readers_are_sparse() {
        let (l, _) = layout();
        assert_eq!(l.effective_readers(l.entry()), vec![l.entry()]);
        let middle = l.shelf(3);
        let readers = l.effective_readers(middle);
        assert!(readers.contains(&middle));
        assert!(readers.contains(&l.shelf(2)));
        assert!(readers.contains(&l.shelf(4)));
        assert_eq!(readers.len(), 3);
        // first shelf only has one neighbour
        assert_eq!(l.effective_readers(l.shelf(0)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shelf_index_out_of_range_panics() {
        let (l, _) = layout();
        let _ = l.shelf(100);
    }
}
