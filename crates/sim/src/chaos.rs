//! Seeded chaos schedules composing every fault injector at once.
//!
//! A [`ChaosPlan`] is a [`FaultPlan`] whose configuration turns *all* the
//! fault families on together — crashes with downtime, reader outages,
//! delivery delay/duplication, transmission and ack losses, link partitions,
//! corrupted wire bytes, rogue tag readings and per-site clock skew. Like
//! every plan, it is a pure function of its seed: site-level faults are
//! tabulated at construction and message-level faults are key-hashed point
//! queries, so the same chaos schedule injects the identical fault sequence
//! into the sequential and parallel executors, any worker count, and any
//! crash-replay interleaving.
//!
//! The `chaos` soak in `rfid-bench` drives a whole [`schedule`] of these
//! plans through all four migration strategies with the invariant oracles of
//! `rfid-dist` asserted on every run; [`ChaosPlan::calm`] is the identity
//! schedule the bit-identity test pins against the direct delivery path.
//!
//! [`schedule`]: ChaosPlan::schedule

use crate::fault::{FaultPlan, FaultPlanConfig};

/// A composed chaos schedule: a fault plan built from a config that enables
/// every injector, plus the config it came from (for reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    config: FaultPlanConfig,
    plan: FaultPlan,
}

impl ChaosPlan {
    /// The full soak schedule: every fault family active at once, scaled to
    /// the run's horizon. Deterministic in `seed`.
    pub fn soak(seed: u64, num_sites: u16, horizon_secs: u32) -> ChaosPlan {
        ChaosPlan::from_config(FaultPlanConfig {
            crash_probability: 0.4,
            max_downtime_secs: 180,
            outage_probability: 0.5,
            outage_max_secs: (horizon_secs / 10).max(1),
            delay_probability: 0.2,
            delay_max_secs: 120,
            duplicate_probability: 0.1,
            loss_probability: 0.1,
            ack_loss_probability: 0.05,
            partition_probability: 0.3,
            partition_max_secs: (horizon_secs / 8).max(1),
            corruption_probability: 0.05,
            rogue_probability: 0.02,
            clock_skew_max_secs: 45,
            ..FaultPlanConfig::quiet(seed, num_sites, horizon_secs)
        })
    }

    /// The identity schedule: the chaos machinery engaged with every fault
    /// family off. A calm run must be bit-identical to the direct path —
    /// this is the hook `transport_equivalence.rs` pins.
    pub fn calm(seed: u64, num_sites: u16, horizon_secs: u32) -> ChaosPlan {
        ChaosPlan::from_config(FaultPlanConfig::quiet(seed, num_sites, horizon_secs))
    }

    /// A chaos schedule from an explicit configuration.
    pub fn from_config(config: FaultPlanConfig) -> ChaosPlan {
        let plan = FaultPlan::generate(&config);
        ChaosPlan { config, plan }
    }

    /// `count` independent soak schedules derived from one master seed, for
    /// the `chaos` experiment's N-schedule sweep. Schedule `i` uses a
    /// decorrelated per-index seed, so the list is itself a pure function of
    /// `master_seed`.
    pub fn schedule(
        master_seed: u64,
        count: usize,
        num_sites: u16,
        horizon_secs: u32,
    ) -> Vec<ChaosPlan> {
        (0..count)
            .map(|i| {
                let seed = crate::fault::derive_seed(master_seed, i as u64);
                ChaosPlan::soak(seed, num_sites, horizon_secs)
            })
            .collect()
    }

    /// The generated fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The configuration the plan was generated from.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// Consume the schedule, yielding the fault plan for
    /// `DistributedConfig::with_faults`.
    pub fn into_plan(self) -> FaultPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    #[test]
    fn soak_schedules_are_deterministic_and_actually_chaotic() {
        let a = ChaosPlan::soak(41, 8, 2400);
        let b = ChaosPlan::soak(41, 8, 2400);
        assert_eq!(a, b);
        let plan = a.plan();
        assert!(!plan.is_quiet());
        assert!(plan.has_transport_faults());
        assert!(
            !plan.events().is_empty(),
            "a soak over 8 sites must schedule site-level faults"
        );
    }

    #[test]
    fn calm_schedules_are_the_identity_plan() {
        let calm = ChaosPlan::calm(41, 8, 2400);
        assert!(calm.plan().is_quiet());
        assert!(!calm.plan().has_transport_faults());
        assert!(calm.plan().events().is_empty());
    }

    #[test]
    fn schedules_derive_distinct_plans_from_one_master_seed() {
        let first = ChaosPlan::schedule(7, 3, 8, 2400);
        let second = ChaosPlan::schedule(7, 3, 8, 2400);
        assert_eq!(first, second);
        let events: Vec<Vec<FaultEvent>> = first.iter().map(|c| c.plan().events()).collect();
        assert!(
            events[0] != events[1] || events[1] != events[2],
            "per-index seeds should decorrelate the schedules"
        );
    }
}
