//! # rfid
//!
//! Umbrella crate for the reproduction of *"Distributed Inference and Query
//! Processing for RFID Tracking and Monitoring"* (Cao, Sutton, Diao, Shenoy;
//! PVLDB 4(5), 2011).
//!
//! It re-exports the individual crates of the workspace under one roof so
//! that the examples and integration tests can exercise the whole pipeline —
//! simulate a supply chain, infer locations and containment with RFINFER,
//! answer monitoring queries, and run everything distributed across sites:
//!
//! * [`types`] — the shared data model (tags, readings, events, containment,
//!   read-rate tables);
//! * [`sim`] — supply-chain and lab-deployment simulators;
//! * [`core`] — the RFINFER inference engine (EM, change-point detection,
//!   history truncation, migration state);
//! * [`smurf`] — the SMURF* baseline;
//! * [`query`] — CQL-style stream query processing (pattern matching,
//!   hybrid queries, query-state sharing);
//! * [`dist`] — distributed inference and query processing with state
//!   migration and communication accounting; sites run sequentially or
//!   sharded across worker threads (`DistributedConfig::num_workers`) with
//!   bit-identical results, survive seeded chaos (crashes, loss,
//!   partitions, poisoned payloads — see [`sim::ChaosPlan`]) and are
//!   audited by invariant oracles over per-edge conservation ledgers;
//! * [`wire`] — the compact binary wire codec every cross-site payload is
//!   routed through (`DistributedConfig::wire_format`), with JSON retained
//!   for debugging;
//! * [`eval`] — evaluation metrics and table formatting.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness that regenerates every table and figure of the paper.

#![warn(missing_docs)]

pub use rfid_core as core;
pub use rfid_dist as dist;
pub use rfid_eval as eval;
pub use rfid_query as query;
pub use rfid_sim as sim;
pub use rfid_smurf as smurf;
pub use rfid_types as types;
pub use rfid_wire as wire;

// The robustness surface, re-exported at the root: transport accounting,
// poison quarantine, memory-budget degradation, chaos scheduling and the
// invariant oracles that audit a finished run. Everything else stays behind
// its crate alias.
pub use rfid_core::{MemoryBudget, MemoryStats};
pub use rfid_dist::{assert_audit, audit, EdgeLedger, QuarantineEntry, TransportStats, Violation};
pub use rfid_sim::ChaosPlan;
