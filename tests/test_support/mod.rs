//! Helpers shared by the root integration suites.
//!
//! Each `tests/*.rs` file is its own crate, so this module is compiled into
//! every suite that declares `mod test_support;` — items a given suite does
//! not use are expected, hence the `dead_code` allowance. Chain and trace
//! constructors delegate to [`rfid::sim::presets`] so the canonical scales
//! (the seed-55 smoke chain, the seed-97 reference chain) are defined once
//! and shared with the benchmarks and the crash-consistency/fault suites.

#![allow(dead_code)]

use rfid::core::{InferenceConfig, InferenceEngine};
use rfid::dist::DistributedOutcome;
use rfid::sim::{presets, ChainTrace};
use rfid::types::{Epoch, TagId, Trace};

/// The seed-55 smoke chain: `sites` warehouses, 4 items per case, 2 cases
/// per pallet, 90 s transit, fanout 2.
pub fn smoke_chain(length_secs: u32, sites: u32, anomaly_interval: Option<u32>) -> ChainTrace {
    presets::smoke_chain(length_secs, sites, anomaly_interval)
}

/// Fraction of objects whose inferred container matches ground truth at the
/// end of a distributed run.
pub fn chain_accuracy(chain: &ChainTrace, outcome: &DistributedOutcome) -> f64 {
    let end = Epoch(chain.sites[0].meta.length);
    let objects = chain.objects();
    let correct = objects
        .iter()
        .filter(|&&o| outcome.container_of(o) == chain.containment.container_at(o, end))
        .count();
    correct as f64 / objects.len().max(1) as f64
}

/// Fraction of objects whose estimated container matches ground truth at the
/// end of a single-site trace.
pub fn containment_accuracy(trace: &Trace, estimate: impl Fn(TagId) -> Option<TagId>) -> f64 {
    let end = Epoch(trace.meta.length);
    let objects = trace.objects();
    let correct = objects
        .iter()
        .filter(|&&o| estimate(o) == trace.truth.container_at(o, end))
        .count();
    correct as f64 / objects.len().max(1) as f64
}

/// Replay a single-site trace through a fresh engine epoch by epoch and run
/// a final inference pass at the horizon.
pub fn run_engine(trace: &Trace, config: InferenceConfig) -> InferenceEngine {
    let mut engine = InferenceEngine::new(config, trace.read_rates.clone());
    // `readings()` sorts in place, so it needs a mutable copy of the log.
    let mut readings = trace.readings.clone();
    let all = readings.readings().to_vec();
    let mut cursor = 0usize;
    for t in 0..=trace.meta.length {
        let now = Epoch(t);
        while cursor < all.len() && all[cursor].time == now {
            engine.observe(all[cursor]);
            cursor += 1;
        }
        engine.step(now);
    }
    engine.run_inference(Epoch(trace.meta.length));
    engine
}
