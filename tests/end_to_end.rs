//! End-to-end integration tests spanning the whole workspace: simulator →
//! inference → evaluation, the SMURF* comparison, and the lab-trace
//! emulation. These mirror (at smoke scale) the claims of Section 5.1/5.2.

mod test_support;

use rfid::core::{InferenceConfig, TruncationPolicy};
use rfid::eval::{changes_f_measure, metrics::ReportedChange, ChangeMatchConfig};
use rfid::sim::{LabConfig, LabTraceId, WarehouseConfig, WarehouseSimulator};
use rfid::smurf::{SmurfStar, SmurfStarConfig};
use test_support::{containment_accuracy, run_engine};

#[test]
fn stable_containment_is_recovered_with_high_accuracy() {
    // Section 5.1: with stable containment and noisy readers, containment
    // error stays below ~7% and location inference is nearly perfect.
    let trace = WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(1200)
            .with_read_rate(0.7)
            .with_items_per_case(6)
            .with_cases_per_pallet(2)
            .with_seed(100),
    )
    .generate();
    let engine = run_engine(
        &trace,
        InferenceConfig::default().without_change_detection(),
    );
    let accuracy = containment_accuracy(&trace, |o| engine.container_of(o));
    assert!(
        accuracy > 0.93,
        "containment accuracy should exceed 93%, got {:.1}%",
        100.0 * accuracy
    );
}

#[test]
fn critical_region_truncation_matches_full_history_accuracy() {
    let trace = WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(1500)
            .with_read_rate(0.8)
            .with_items_per_case(6)
            .with_cases_per_pallet(2)
            .with_seed(101),
    )
    .generate();
    let full = run_engine(
        &trace,
        InferenceConfig::default()
            .with_truncation(TruncationPolicy::Full)
            .without_change_detection(),
    );
    let cr = run_engine(
        &trace,
        InferenceConfig::default().without_change_detection(),
    );
    let full_acc = containment_accuracy(&trace, |o| full.container_of(o));
    let cr_acc = containment_accuracy(&trace, |o| cr.container_of(o));
    assert!(
        cr_acc >= full_acc - 0.05,
        "CR accuracy ({cr_acc:.3}) should be within 5 points of full history ({full_acc:.3})"
    );
    // and the CR engine retains (far) less history
    assert!(cr.stored_observations() <= full.stored_observations());
}

#[test]
fn rfinfer_is_at_least_as_accurate_as_smurf_star_on_lab_traces() {
    // Section 5.2 / Figure 5(d): RFINFER dominates SMURF* on the lab traces.
    for trace_id in [LabTraceId::T1, LabTraceId::T3, LabTraceId::T4] {
        let trace = LabConfig::published(trace_id).generate();
        let engine = run_engine(&trace, InferenceConfig::default());
        let ours = containment_accuracy(&trace, |o| engine.container_of(o));
        let smurf_outcome = SmurfStar::new(SmurfStarConfig::default()).run(&trace.readings);
        let smurf = containment_accuracy(&trace, |o| smurf_outcome.container_of(o));
        assert!(
            ours + 1e-9 >= smurf,
            "{}: RFINFER ({ours:.3}) should not lose to SMURF* ({smurf:.3})",
            trace_id.label()
        );
        assert!(
            ours > 0.85,
            "{}: RFINFER accuracy should exceed 85%, got {ours:.3}",
            trace_id.label()
        );
    }
}

#[test]
fn injected_containment_changes_are_detected() {
    // Section 5.1, containment change detection: with anomalies injected and
    // a read rate of 0.8 the detector should reach a solid F-measure.
    let trace = WarehouseSimulator::new(
        WarehouseConfig::default()
            .with_length(2400)
            .with_read_rate(0.85)
            .with_items_per_case(6)
            .with_cases_per_pallet(2)
            .with_anomaly_interval(120)
            .with_seed(102),
    )
    .generate();
    assert!(!trace.truth.containment.changes().is_empty());
    let engine = run_engine(&trace, InferenceConfig::default().with_recent_history(500));
    let reported: Vec<ReportedChange> = engine
        .detected_changes()
        .iter()
        .map(|c| ReportedChange {
            object: c.object,
            change_at: c.change_at,
            new_container: c.new_container,
        })
        .collect();
    let pr = changes_f_measure(
        trace.truth.containment.changes(),
        &reported,
        ChangeMatchConfig::default(),
    );
    assert!(
        pr.f_measure() >= 60.0,
        "change-detection F-measure should be solid at RR=0.85, got {:.0}%",
        pr.f_measure()
    );
}

#[test]
fn lab_traces_with_staged_changes_have_higher_error_but_stay_bounded() {
    // Figure 5(d): containment changes (T5-T8) raise the error, but it stays
    // within ~13% even with all noise factors combined.
    let stable = LabConfig::published(LabTraceId::T2).generate();
    let changed = LabConfig::published(LabTraceId::T6).generate();
    let engine_stable = run_engine(&stable, InferenceConfig::default());
    let engine_changed = run_engine(&changed, InferenceConfig::default());
    let acc_stable = containment_accuracy(&stable, |o| engine_stable.container_of(o));
    let acc_changed = containment_accuracy(&changed, |o| engine_changed.container_of(o));
    assert!(acc_stable >= acc_changed - 0.02);
    assert!(
        acc_changed > 0.8,
        "even with staged changes accuracy stays above 80%, got {acc_changed:.3}"
    );
}
