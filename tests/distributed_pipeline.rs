//! Integration tests of the distributed pipeline: chain simulation, per-site
//! inference with state migration, hybrid query processing, and the
//! communication-cost comparison (Sections 4, 5.3 and 5.4 at smoke scale).

mod test_support;

use rfid::core::InferenceConfig;
use rfid::dist::{DistributedConfig, DistributedDriver, MessageKind, MigrationStrategy};
use rfid::query::ExposureQuery;
use rfid::sim::TemperatureModel;
use std::collections::BTreeMap;
use test_support::{chain_accuracy as accuracy, smoke_chain as chain};

#[test]
fn collapsed_migration_approximates_centralized_accuracy_at_a_fraction_of_the_cost() {
    let chain = chain(2400, 3, None);
    let run = |strategy| {
        DistributedDriver::new(DistributedConfig {
            strategy,
            inference: InferenceConfig::default().without_change_detection(),
            ..Default::default()
        })
        .run(&chain)
    };
    let collapsed = run(MigrationStrategy::CollapsedWeights);
    let centralized = run(MigrationStrategy::Centralized);
    let acc_collapsed = accuracy(&chain, &collapsed);
    let acc_central = accuracy(&chain, &centralized);
    assert!(
        acc_collapsed > 0.85,
        "collapsed accuracy {acc_collapsed:.3}"
    );
    assert!(
        acc_collapsed >= acc_central - 0.1,
        "collapsed ({acc_collapsed:.3}) should approximate centralized ({acc_central:.3})"
    );
    let cost_ratio =
        centralized.comm.total_bytes() as f64 / collapsed.comm.total_bytes().max(1) as f64;
    assert!(
        cost_ratio > 10.0,
        "centralized should cost far more to communicate (ratio {cost_ratio:.1})"
    );
}

#[test]
fn hybrid_queries_fire_and_query_state_sharing_pays_off() {
    let chain = chain(2400, 2, None);
    let mut properties = BTreeMap::new();
    for object in chain.objects() {
        properties.insert(object, "temperature-sensitive".to_string());
    }
    let outcome = DistributedDriver::new(DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default().without_change_detection(),
        queries: vec![ExposureQuery {
            duration_secs: 600,
            ..ExposureQuery::q1([])
        }],
        product_properties: properties,
        temperature: Some(TemperatureModel::new([])), // everything at room temperature
        ..Default::default()
    })
    .run(&chain);
    assert!(
        !outcome.alerts.is_empty(),
        "sustained exposure must raise alerts"
    );
    assert!(outcome.alerts.iter().all(|a| a.query == "Q1"));
    // sharing never makes migrated query state larger, and usually shrinks it
    assert!(outcome.query_state_shared_bytes <= outcome.query_state_unshared_bytes);
    assert!(outcome.comm.bytes_of_kind(MessageKind::QueryState) > 0);
}

#[test]
fn object_custody_is_tracked_by_the_ons() {
    let chain = chain(3000, 3, None);
    let outcome = DistributedDriver::new(DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default().without_change_detection(),
        ..Default::default()
    })
    .run(&chain);
    // every transferred tag ends up registered at a non-source site
    let moved: Vec<_> = chain.transfers.iter().map(|t| (t.tag, t.to_site)).collect();
    assert!(!moved.is_empty());
    for (tag, _) in moved.iter().take(50) {
        let site = outcome
            .ons
            .lookup(*tag)
            .expect("transferred tag is registered");
        assert_ne!(site.0, u16::MAX);
    }
}

#[test]
fn anomalies_across_sites_still_leave_most_containment_correct() {
    let chain = chain(2400, 2, Some(120));
    let outcome = DistributedDriver::new(DistributedConfig {
        strategy: MigrationStrategy::CollapsedWeights,
        inference: InferenceConfig::default(),
        ..Default::default()
    })
    .run(&chain);
    let acc = accuracy(&chain, &outcome);
    assert!(
        acc > 0.7,
        "containment accuracy under churn should stay reasonable, got {acc:.3}"
    );
}
